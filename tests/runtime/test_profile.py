"""Direct coverage for :mod:`repro.runtime.profile`.

The profiler was previously exercised only transitively (through
``GanaPipeline.run(profile=True)``); these tests pin its accumulation
semantics — additive stage timing, max-vs-additive definition fields,
seconds-descending report ordering — and the JSON round-trip.
"""

from __future__ import annotations

import json

import pytest

from repro.core.stages import StageName
from repro.runtime.profile import PipelineProfiler, TemplateStats


class TestStageTiming:
    def test_record_stage_is_additive(self):
        profiler = PipelineProfiler()
        profiler.record_stage("post1", 0.25)
        profiler.record_stage("post1", 0.5)
        assert profiler.stages["post1"] == pytest.approx(0.75)

    def test_record_stage_accepts_enum_and_stores_value(self):
        profiler = PipelineProfiler()
        profiler.record_stage(StageName.GCN, 0.1)
        profiler.record_stage(StageName.GCN.value, 0.1)
        assert set(profiler.stages) == {"gcn"}
        assert profiler.stages["gcn"] == pytest.approx(0.2)

    def test_stage_contextmanager_times_block(self):
        profiler = PipelineProfiler()
        with profiler.stage("graph"):
            pass
        assert profiler.stages["graph"] >= 0.0
        # re-entry is additive, not replacing
        before = profiler.stages["graph"]
        with profiler.stage("graph"):
            pass
        assert profiler.stages["graph"] >= before

    def test_stage_records_on_exception(self):
        profiler = PipelineProfiler()
        with pytest.raises(RuntimeError):
            with profiler.stage("gcn"):
                raise RuntimeError("boom")
        assert "gcn" in profiler.stages


class TestTemplateStats:
    def test_launches_accumulate(self):
        profiler = PipelineProfiler()
        profiler.record_template("DP-N", 0.1, matches=2)
        profiler.record_template("DP-N", 0.3, matches=1)
        stats = profiler.templates["DP-N"]
        assert stats.launches == 2
        assert stats.matches == 3
        assert stats.seconds == pytest.approx(0.4)

    def test_skips_do_not_count_as_launches(self):
        profiler = PipelineProfiler()
        profiler.record_template_skip("CM-N")
        profiler.record_template_skip("CM-N")
        stats = profiler.templates["CM-N"]
        assert stats == TemplateStats(launches=0, matches=0, skips=2)

    def test_counters_accumulate(self):
        profiler = PipelineProfiler()
        profiler.count("cccs")
        profiler.count("cccs", 3)
        assert profiler.counters == {"cccs": 4}


class TestRecordDefinition:
    def test_single_record(self):
        profiler = PipelineProfiler()
        profiler.record_definition(
            "ota_cell", instances=4, cccs=2, reused=1, seconds=0.5
        )
        assert profiler.definitions["ota_cell"] == {
            "instances": 4,
            "cccs": 2,
            "reused": 1,
            "seconds": 0.5,
        }

    def test_instances_take_max_other_fields_add(self):
        # instances is a population size (how many copies exist), the
        # rest are event counts — re-recording must not double-count
        # the population.
        profiler = PipelineProfiler()
        profiler.record_definition(
            "cell", instances=4, cccs=2, reused=1, seconds=0.25
        )
        profiler.record_definition(
            "cell", instances=3, cccs=1, reused=2, seconds=0.25
        )
        stats = profiler.definitions["cell"]
        assert stats["instances"] == 4
        assert stats["cccs"] == 3
        assert stats["reused"] == 3
        assert stats["seconds"] == pytest.approx(0.5)


class TestReporting:
    def test_templates_sorted_by_seconds_descending(self):
        profiler = PipelineProfiler()
        profiler.record_template("cheap", 0.01, matches=0)
        profiler.record_template("hot", 2.0, matches=5)
        profiler.record_template("mid", 0.5, matches=1)
        assert list(profiler.as_dict()["per_template"]) == [
            "hot",
            "mid",
            "cheap",
        ]

    def test_definitions_key_absent_when_flat_run(self):
        profiler = PipelineProfiler()
        profiler.record_stage("gcn", 0.1)
        assert "definitions" not in profiler.as_dict()

    def test_definitions_sorted_by_seconds_descending(self):
        profiler = PipelineProfiler()
        profiler.record_definition(
            "cold", instances=1, cccs=1, reused=0, seconds=0.1
        )
        profiler.record_definition(
            "hot", instances=2, cccs=4, reused=2, seconds=1.5
        )
        assert list(profiler.as_dict()["definitions"]) == ["hot", "cold"]

    def test_write_json_round_trips(self, tmp_path):
        profiler = PipelineProfiler()
        profiler.record_stage(StageName.POST1, 0.123456789)
        profiler.record_template("DP-N", 0.1, matches=2)
        profiler.count("components", 2)
        profiler.record_definition(
            "cell", instances=2, cccs=1, reused=1, seconds=0.2
        )
        out = profiler.write_json(tmp_path / "profile.json")
        loaded = json.loads(out.read_text())
        assert loaded == profiler.as_dict()
        # rounding to microseconds happens at report time
        assert loaded["stages"]["post1"] == 0.123457


class TestPipelineIntegration:
    def test_profiled_run_exposes_stage_and_template_sections(
        self, quick_ota_annotator
    ):
        from repro.core.pipeline import GanaPipeline
        from tests.conftest import DIFF_OTA_DECK

        pipeline = GanaPipeline(annotator=quick_ota_annotator)
        result = pipeline.run(DIFF_OTA_DECK, profile=True)
        assert result.profile is not None
        assert set(result.timings) <= set(result.profile["stages"])
        assert result.profile["per_template"]
