"""Batch annotation parity: ``run_many`` ≡ a serial ``run`` loop.

ISSUE 1 acceptance: parallel batch annotation over ≥4 netlists matches
serial ``run()`` results exactly, including the ``timings`` keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import GanaPipeline
from repro.datasets.ota import OtaSpec, generate_ota, ota_variants
from repro.spice.writer import write_circuit


@pytest.fixture(scope="module")
def pipeline(quick_ota_annotator):
    return GanaPipeline(annotator=quick_ota_annotator)


@pytest.fixture(scope="module")
def decks():
    specs = ota_variants(6, seed="run-many")
    return [
        write_circuit(generate_ota(spec, name=f"batch{i}").circuit)
        for i, spec in enumerate(specs)
    ]


def _assert_same_results(batch, serial):
    assert len(batch) == len(serial)
    for got, want in zip(batch, serial):
        assert got.annotation.element_classes == want.annotation.element_classes
        assert got.annotation.net_classes == want.annotation.net_classes
        assert np.array_equal(
            got.gcn_annotation.vertex_classes, want.gcn_annotation.vertex_classes
        )
        assert got.hierarchy.render() == want.hierarchy.render()
        assert set(got.timings) == set(want.timings)
        assert set(got.timings) == {
            "preprocess", "graph", "gcn", "post1", "post2", "hierarchy",
        }


class TestRunMany:
    def test_matches_serial_run(self, pipeline, decks):
        names = [f"sys{i}" for i in range(len(decks))]
        serial = [
            pipeline.run(deck, name=name) for deck, name in zip(decks, names)
        ]
        batch = pipeline.run_many(decks, names=names)
        _assert_same_results(batch, serial)

    def test_matches_serial_run_forced_pool(self, pipeline, decks):
        """Even on a 1-cpu host, workers=2 exercises the process pool."""
        names = [f"sys{i}" for i in range(len(decks))]
        serial = [
            pipeline.run(deck, name=name) for deck, name in zip(decks, names)
        ]
        batch = pipeline.run_many(decks, names=names, workers=2)
        _assert_same_results(batch, serial)

    def test_shared_port_labels_apply_to_all(self, pipeline, decks):
        labels = {"vout": "output"}
        batch = pipeline.run_many(decks[:4], port_labels=labels)
        serial = [pipeline.run(deck, port_labels=labels) for deck in decks[:4]]
        _assert_same_results(batch, serial)

    def test_per_netlist_port_labels(self, pipeline, decks):
        per_item = [{"vout": "output"}, None, {}, {"vinp": "input"}]
        batch = pipeline.run_many(decks[:4], port_labels=per_item)
        serial = [
            pipeline.run(deck, port_labels=labels)
            for deck, labels in zip(decks[:4], per_item)
        ]
        _assert_same_results(batch, serial)

    def test_empty_batch(self, pipeline):
        assert pipeline.run_many([]) == []

    def test_serial_bypass_spawns_no_pool(self, pipeline, decks, monkeypatch):
        """``workers=1`` or a single netlist must never touch the pool.

        BENCH showed the pool *losing* to the serial loop on a 1-CPU
        host (0.88x), so the bypass is a performance guarantee: the
        whole multiprocessing machinery stays cold.
        """
        import repro.runtime.parallel as parallel

        def _forbidden(*args, **kwargs):
            raise AssertionError("process pool used on the serial path")

        monkeypatch.setattr(parallel, "parallel_map", _forbidden)
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", _forbidden)

        names = [f"sys{i}" for i in range(len(decks))]
        serial = [
            pipeline.run(deck, name=name) for deck, name in zip(decks, names)
        ]
        batch = pipeline.run_many(decks, names=names, workers=1)
        _assert_same_results(batch, serial)
        # A single item bypasses the pool regardless of worker count.
        only = pipeline.run_many([decks[0]], names=["sys0"], workers=8)
        _assert_same_results(only, serial[:1])

    def test_single_netlist(self, pipeline, decks):
        batch = pipeline.run_many([decks[0]], names=["only"])
        serial = [pipeline.run(decks[0], name="only")]
        _assert_same_results(batch, serial)
