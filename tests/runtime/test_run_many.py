"""Batch annotation parity: ``run_many`` ≡ a serial ``run`` loop.

ISSUE 1 acceptance: parallel batch annotation over ≥4 netlists matches
serial ``run()`` results exactly, including the ``timings`` keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import GanaPipeline
from repro.datasets.ota import OtaSpec, generate_ota, ota_variants
from repro.spice.writer import write_circuit


@pytest.fixture(scope="module")
def pipeline(quick_ota_annotator):
    return GanaPipeline(annotator=quick_ota_annotator)


@pytest.fixture(scope="module")
def decks():
    specs = ota_variants(6, seed="run-many")
    return [
        write_circuit(generate_ota(spec, name=f"batch{i}").circuit)
        for i, spec in enumerate(specs)
    ]


def _assert_same_results(batch, serial):
    assert len(batch) == len(serial)
    for got, want in zip(batch, serial):
        assert got.annotation.element_classes == want.annotation.element_classes
        assert got.annotation.net_classes == want.annotation.net_classes
        assert np.array_equal(
            got.gcn_annotation.vertex_classes, want.gcn_annotation.vertex_classes
        )
        assert got.hierarchy.render() == want.hierarchy.render()
        assert set(got.timings) == set(want.timings)
        assert set(got.timings) == {
            "preprocess", "graph", "gcn", "post1", "post2", "hierarchy",
        }


class TestRunMany:
    def test_matches_serial_run(self, pipeline, decks):
        names = [f"sys{i}" for i in range(len(decks))]
        serial = [
            pipeline.run(deck, name=name) for deck, name in zip(decks, names)
        ]
        batch = pipeline.run_many(decks, names=names)
        _assert_same_results(batch, serial)

    def test_matches_serial_run_forced_pool(self, pipeline, decks):
        """Even on a 1-cpu host, workers=2 exercises the process pool."""
        names = [f"sys{i}" for i in range(len(decks))]
        serial = [
            pipeline.run(deck, name=name) for deck, name in zip(decks, names)
        ]
        batch = pipeline.run_many(decks, names=names, workers=2)
        _assert_same_results(batch, serial)

    def test_shared_port_labels_apply_to_all(self, pipeline, decks):
        labels = {"vout": "output"}
        batch = pipeline.run_many(decks[:4], port_labels=labels)
        serial = [pipeline.run(deck, port_labels=labels) for deck in decks[:4]]
        _assert_same_results(batch, serial)

    def test_per_netlist_port_labels(self, pipeline, decks):
        per_item = [{"vout": "output"}, None, {}, {"vinp": "input"}]
        batch = pipeline.run_many(decks[:4], port_labels=per_item)
        serial = [
            pipeline.run(deck, port_labels=labels)
            for deck, labels in zip(decks[:4], per_item)
        ]
        _assert_same_results(batch, serial)

    def test_empty_batch(self, pipeline):
        assert pipeline.run_many([]) == []

    def test_serial_bypass_spawns_no_pool(self, pipeline, decks, monkeypatch):
        """``workers=1`` or a single netlist must never touch the pool.

        BENCH showed the pool *losing* to the serial loop on a 1-CPU
        host (0.88x), so the bypass is a performance guarantee: the
        whole multiprocessing machinery stays cold.
        """
        import repro.runtime.parallel as parallel

        def _forbidden(*args, **kwargs):
            raise AssertionError("process pool used on the serial path")

        monkeypatch.setattr(parallel, "parallel_map", _forbidden)
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", _forbidden)

        names = [f"sys{i}" for i in range(len(decks))]
        serial = [
            pipeline.run(deck, name=name) for deck, name in zip(decks, names)
        ]
        batch = pipeline.run_many(decks, names=names, workers=1)
        _assert_same_results(batch, serial)
        # A single item bypasses the pool regardless of worker count.
        only = pipeline.run_many([decks[0]], names=["sys0"], workers=8)
        _assert_same_results(only, serial[:1])

    def test_single_netlist(self, pipeline, decks):
        batch = pipeline.run_many([decks[0]], names=["only"])
        serial = [pipeline.run(decks[0], name="only")]
        _assert_same_results(batch, serial)


class _CountingAnnotator:
    """Delegates to a real annotator, counting the inference calls."""

    def __init__(self, inner):
        self.inner = inner
        self.annotate_calls = 0
        self.batch_calls = 0

    @property
    def class_names(self):
        return self.inner.class_names

    @property
    def model(self):
        return self.inner.model

    def annotate(self, graph, net_roles=None):
        self.annotate_calls += 1
        return self.inner.annotate(graph, net_roles=net_roles)

    def annotate_batch(self, graphs, net_roles_list=None):
        self.batch_calls += 1
        return self.inner.annotate_batch(graphs, net_roles_list)


class _ExplodingBatchAnnotator(_CountingAnnotator):
    """Supports the packed API but always fails it — the chunk flow
    must fall back to per-item inference with identical results."""

    def annotate_batch(self, graphs, net_roles_list=None):
        self.batch_calls += 1
        raise RuntimeError("packed forward exploded")


def _jobs_for(decks, names):
    return [
        {
            "index": i,
            "isolate": False,
            "timeout": None,
            "kwargs": {
                "netlist": deck,
                "net_roles": None,
                "port_labels": None,
                "name": name,
                "infer_testbench": True,
                "mode": "strict",
                "profile": False,
                "artifact_cache": None,
            },
        }
        for i, (deck, name) in enumerate(zip(decks, names))
    ]


class TestBatchedChunkFlow:
    """ISSUE 6 tentpole: a worker's chunk runs ONE packed GCN forward
    for all of its decks instead of one per deck."""

    def test_chunk_uses_one_packed_forward(
        self, quick_ota_annotator, pipeline, decks
    ):
        from repro.core.pipeline import _run_pipeline_chunk

        counting = _CountingAnnotator(quick_ota_annotator)
        counted_pipeline = GanaPipeline(annotator=counting)
        names = [f"sys{i}" for i in range(len(decks))]
        results = _run_pipeline_chunk(
            counted_pipeline, _jobs_for(decks, names)
        )
        assert counting.batch_calls == 1
        assert counting.annotate_calls == 0
        serial = [
            pipeline.run(deck, name=name) for deck, name in zip(decks, names)
        ]
        _assert_same_results(results, serial)
        # The packed GCN seconds are attributed back to the items.
        assert all(r.timings["gcn"] > 0.0 for r in results)

    def test_packed_failure_falls_back_per_item(
        self, quick_ota_annotator, pipeline, decks
    ):
        from repro.core.pipeline import _run_pipeline_chunk

        exploding = _ExplodingBatchAnnotator(quick_ota_annotator)
        fallback_pipeline = GanaPipeline(annotator=exploding)
        names = [f"sys{i}" for i in range(len(decks))]
        results = _run_pipeline_chunk(
            fallback_pipeline, _jobs_for(decks, names)
        )
        assert exploding.batch_calls == 1
        assert exploding.annotate_calls == len(decks)
        serial = [
            pipeline.run(deck, name=name) for deck, name in zip(decks, names)
        ]
        _assert_same_results(results, serial)

    def test_run_many_reuses_warm_pool(self, pipeline, decks):
        from repro.runtime import parallel

        parallel.shutdown_pools()
        pipeline.run_many(decks, workers=2)
        assert len(parallel._POOLS) == 1
        (key,) = parallel._POOLS
        pipeline.run_many(decks, workers=2)
        # Same pipeline content → same key → the pool survived the
        # first call and served the second.
        assert list(parallel._POOLS) == [key]


class _BoobyTrappedAnnotator:
    """Delegates to a real annotator but explodes on decks named ``bomb``.

    Module-level so it pickles by reference into pool workers; the
    failure lands in the ``gcn`` stage, *after* preprocess/graph have
    been profiled — exactly the partial-metadata case the satellite
    protects.
    """

    def __init__(self, inner):
        self.inner = inner

    @property
    def class_names(self):
        return self.inner.class_names

    @property
    def model(self):
        return self.inner.model

    def annotate(self, graph, net_roles=None):
        if graph.circuit.name.startswith("bomb"):
            raise RuntimeError("gcn exploded")
        return self.inner.annotate(graph, net_roles=net_roles)


def _bomb_circuit():
    from repro.spice.netlist import Circuit, DeviceKind, make_mos

    return Circuit(
        name="bomb",
        devices=[
            make_mos("m1", DeviceKind.NMOS, "out", "in", "gnd!"),
            make_mos("m2", DeviceKind.PMOS, "out", "in", "vdd!"),
        ],
    )


@pytest.fixture(scope="module")
def fragile_pipeline(quick_ota_annotator):
    """No degradation: the booby-trapped GCN failure escapes."""
    return GanaPipeline(
        annotator=_BoobyTrappedAnnotator(quick_ota_annotator), degrade=False
    )


class TestFailureMetadataSurvivesPool:
    """ISSUE 4 satellite: per-item profile/diagnostics cross the pool
    for *every* ``on_error`` mode, not just the happy path."""

    def test_report_mode_carries_partial_profile(self, fragile_pipeline, decks):
        batch = fragile_pipeline.run_many(
            [decks[0], _bomb_circuit(), decks[1]],
            names=["ok0", "bomb", "ok1"],
            workers=2,
            on_error="report",
            profile=True,
        )
        ok0, report, ok1 = batch
        assert ok0.ok and ok1.ok and not report.ok
        assert report.stage == "gcn"
        assert report.name == "bomb"
        # The pre-failure stages were profiled and the dict survived
        # pickling back from the worker.
        assert isinstance(report.profile, dict)
        assert "preprocess" in report.profile["stages"]
        assert "graph" in report.profile["stages"]
        assert "post1" not in report.profile["stages"]
        # Successful neighbours keep their own full profiles.
        assert set(ok0.profile["stages"]) == set(ok0.timings)

    def test_report_mode_without_profiling_has_none(self, fragile_pipeline):
        (report,) = fragile_pipeline.run_many(
            [_bomb_circuit()], on_error="report", profile=False
        )
        assert not report.ok
        assert report.profile is None

    def test_raise_mode_exception_carries_metadata(
        self, fragile_pipeline, decks
    ):
        from repro.runtime.resilience import failure_report

        with pytest.raises(RuntimeError, match="gcn exploded") as err:
            fragile_pipeline.run_many(
                [decks[0], _bomb_circuit()],
                workers=2,
                on_error="raise",
                profile=True,
            )
        # The stage tag and partial profile are instance attributes on
        # the exception, so they pickle with it out of the worker and
        # failure_report() can be built caller-side too.
        assert getattr(err.value, "_gana_stage", None) == "gcn"
        assert isinstance(getattr(err.value, "_gana_profile", None), dict)
        report = failure_report(err.value)
        assert report.stage == "gcn"
        assert "preprocess" in report.profile["stages"]

    def test_lenient_diagnostics_survive_pool(self, pipeline, decks):
        bad_deck = decks[0] + "\nq_bogus a b c npn\n"
        results = pipeline.run_many(
            [bad_deck, decks[1]],
            workers=2,
            mode="lenient",
            on_error="report",
        )
        assert all(r.ok for r in results)
        assert results[0].diagnostics  # the bogus card, reported per item
        assert not results[1].diagnostics

    def test_failure_report_pickle_round_trip(self, fragile_pipeline):
        import pickle

        (report,) = fragile_pipeline.run_many(
            [_bomb_circuit()], on_error="report", profile=True
        )
        clone = pickle.loads(pickle.dumps(report))
        assert clone.stage == report.stage
        assert clone.profile == report.profile
        assert clone.diagnostics == report.diagnostics
