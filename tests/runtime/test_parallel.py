"""The process-pool map: ordering, fallback, worker resolution, and
the warm-pool registry."""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.runtime import parallel
from repro.runtime.parallel import (
    default_chunksize,
    parallel_map,
    resolve_workers,
    shutdown_pools,
)


def _square(x: int) -> int:
    return x * x


def _tag_pid(x: int) -> tuple[int, int]:
    return x, os.getpid()


_STATE: str | None = None


def _set_state(value: str) -> None:
    global _STATE
    _STATE = value


def _get_state(x: int) -> tuple[str | None, int]:
    return _STATE, os.getpid()


def _noop_init() -> None:
    pass


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("GANA_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("GANA_WORKERS", "5")
        assert resolve_workers() == 5

    def test_garbage_env_falls_through(self, monkeypatch):
        monkeypatch.setenv("GANA_WORKERS", "many")
        assert resolve_workers() >= 1

    def test_default_is_positive(self, monkeypatch):
        monkeypatch.delenv("GANA_WORKERS", raising=False)
        assert resolve_workers() >= 1

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1


class TestChunksize:
    def test_small_input_single_chunks(self):
        assert default_chunksize(3, 8) == 1

    def test_large_input_amortizes(self):
        assert default_chunksize(1000, 4) > 1


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(_square, range(10), workers=1) == [
            x * x for x in range(10)
        ]

    def test_pool_path_preserves_order(self):
        # Forcing two workers exercises the pool even on a 1-cpu host.
        assert parallel_map(_square, range(20), workers=2) == [
            x * x for x in range(20)
        ]

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_single_item_stays_serial(self):
        result = parallel_map(_tag_pid, [3], workers=8)
        assert result == [(3, os.getpid())]

    def test_unpicklable_fn_falls_back_to_serial(self):
        # Lambdas don't pickle; the pool attempt must degrade, not raise.
        result = parallel_map(lambda x: x + 1, range(6), workers=2)
        assert result == [1, 2, 3, 4, 5, 6]

    def test_initializer_runs_in_serial_path(self):
        calls = []
        result = parallel_map(
            _square, [2, 3], workers=1, initializer=calls.append, initargs=("yes",)
        )
        assert result == [4, 9]
        assert calls == ["yes"]

    def test_worker_exception_propagates(self):
        import pytest

        def boom(x):
            raise RuntimeError("worker failure")

        with pytest.raises(RuntimeError, match="worker failure"):
            parallel_map(boom, range(3), workers=1)


class TestPoolReuse:
    """ISSUE 6 satellite: ``parallel_map`` must not tear its pool down
    on every call — warm pools are cached and handed back."""

    def test_generic_pool_is_reused(self):
        shutdown_pools()
        first = {pid for _, pid in parallel_map(_tag_pid, range(8), workers=2)}
        executor = parallel._POOLS.get((2, None))
        assert executor is not None
        second = {pid for _, pid in parallel_map(_tag_pid, range(8), workers=2)}
        # Same executor object served both calls; a torn-down-and-
        # rebuilt pool would have forked fresh worker processes.
        assert parallel._POOLS.get((2, None)) is executor
        assert len(first | second) <= 2
        assert len(parallel._POOLS) == 1

    def test_shutdown_pools_clears_registry(self):
        shutdown_pools()
        parallel_map(_square, range(4), workers=2)
        assert parallel._POOLS
        shutdown_pools()
        assert not parallel._POOLS
        # The registry refills on the next pooled call.
        assert parallel_map(_square, range(4), workers=2) == [0, 1, 4, 9]
        assert len(parallel._POOLS) == 1

    def test_initializer_without_key_is_ephemeral(self):
        shutdown_pools()
        parallel_map(_square, range(4), workers=2, initializer=_noop_init)
        # Unkeyed initializer state can't be trusted across calls.
        assert not parallel._POOLS

    def test_keyed_initializer_pool_is_reused(self):
        shutdown_pools()
        kwargs = dict(
            workers=2,
            initializer=_set_state,
            initargs=("alpha",),
            pool_key="state-alpha",
        )
        first = parallel_map(_get_state, range(4), **kwargs)
        assert all(state == "alpha" for state, _ in first)
        executor = parallel._POOLS.get((2, "state-alpha"))
        assert executor is not None
        second = parallel_map(_get_state, range(4), **kwargs)
        # Reused workers still carry the initializer-installed state.
        assert all(state == "alpha" for state, _ in second)
        assert parallel._POOLS.get((2, "state-alpha")) is executor
        pids = {pid for _, pid in first} | {pid for _, pid in second}
        assert len(pids) <= 2
        assert list(parallel._POOLS) == [(2, "state-alpha")]

    def test_lru_evicts_oldest_pool(self):
        shutdown_pools()
        parallel_map(_square, range(4), workers=2)
        parallel_map(_square, range(4), workers=3)
        parallel_map(_square, range(4), workers=4)
        keys = list(parallel._POOLS)
        assert len(keys) == parallel._MAX_POOLS
        assert (2, None) not in keys


def _exit_on_three(x: int) -> int:
    if x == 3:
        os._exit(1)  # simulated segfault: kills the worker, no traceback
    return x * 2


def _always_exit(x: int) -> int:
    os._exit(1)


def _crash_once_marker(payload) -> int:
    """Dies while the marker file exists (and disarms it): a transient
    crash — an OOM-killed worker — rather than a poison item."""
    marker, x = payload
    if x == 0 and os.path.exists(marker):
        try:
            os.unlink(marker)
        except OSError:
            pass
        os._exit(1)
    return x


def _lost(item, exc):
    return ("lost", item)


class TestPoolSupervision:
    """ISSUE 7: broken pools are quarantined, not resold.

    ``_checkout_pool`` must never hand out an executor with a dead
    worker; a poison item that kills its worker is bisected out and
    mapped through ``on_crash`` while its siblings complete.
    """

    def _break_warm_pool(self):
        shutdown_pools()
        parallel.reset_pool_health()
        assert parallel_map(_square, range(8), workers=2) == [
            x * x for x in range(8)
        ]
        executor = parallel._POOLS[(2, None)]
        with pytest.raises(BrokenProcessPool):
            executor.submit(os._exit, 1).result()
        return executor

    def test_checkout_discards_pool_with_dead_worker(self):
        # The worker dies *between* calls (external SIGKILL / OOM
        # killer) — nothing marks the executor broken until it is
        # health-checked at the next checkout.
        shutdown_pools()
        parallel.reset_pool_health()
        parallel_map(_square, range(8), workers=2)
        executor = parallel._POOLS[(2, None)]
        victim_pid, victim = next(iter(executor._processes.items()))
        os.kill(victim_pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while victim.is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not parallel._pool_is_healthy(executor)

        assert parallel_map(_square, range(8), workers=2) == [
            x * x for x in range(8)
        ]
        assert parallel._POOLS[(2, None)] is not executor
        assert parallel.pool_health()[(2, None)].rebuilt == 1

    def test_broken_executor_is_rebuilt_at_checkout(self):
        executor = self._break_warm_pool()
        assert parallel_map(_square, range(8), workers=2) == [
            x * x for x in range(8)
        ]
        assert parallel._POOLS[(2, None)] is not executor
        assert parallel.pool_health()[(2, None)].rebuilt >= 1

    def test_shutdown_pools_survives_broken_pool(self):
        self._break_warm_pool()
        shutdown_pools()  # must neither raise nor hang on the corpse
        assert not parallel._POOLS

    @pytest.mark.slow
    def test_waiting_shutdown_is_bounded_for_wedged_worker(self):
        # A worker that is alive but never drains (here: stuck in a
        # long sleep) must not hang the waiting shutdown forever; the
        # bounded join kills the workers after ``join_timeout``.
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=1)
        future = pool.submit(time.sleep, 600)
        deadline = time.monotonic() + 10
        while not future.running() and time.monotonic() < deadline:
            time.sleep(0.05)
        start = time.monotonic()
        parallel._shutdown_quietly(pool, wait=True, join_timeout=1.0)
        assert time.monotonic() - start < 8

    def test_poison_item_is_quarantined_and_siblings_complete(self):
        shutdown_pools()
        parallel.reset_pool_health()
        out = parallel_map(
            _exit_on_three, range(6), workers=2, on_crash=_lost
        )
        assert out == [0, 2, 4, ("lost", 3), 8, 10]
        health = parallel.pool_health()[(2, None)]
        assert health.breaks >= 1
        assert health.quarantined == 1
        # The broken pool was evicted; the next call starts healthy.
        assert parallel_map(_square, range(6), workers=2) == [
            x * x for x in range(6)
        ]

    def test_every_item_poison_still_returns_placeholders(self):
        shutdown_pools()
        parallel.reset_pool_health()
        out = parallel_map(_always_exit, range(4), workers=2, on_crash=_lost)
        assert out == [("lost", x) for x in range(4)]
        assert parallel.pool_health()[(2, None)].quarantined == 4

    def test_transient_crash_with_supervision_loses_nothing(self, tmp_path):
        # A once-only crash is not a poison item: bisection reruns both
        # halves on fresh pools, everything completes, nothing is
        # quarantined.
        shutdown_pools()
        parallel.reset_pool_health()
        marker = tmp_path / "crash-once"
        marker.write_text("armed")
        items = [(str(marker), x) for x in range(6)]
        out = parallel_map(
            _crash_once_marker, items, workers=2, on_crash=_lost
        )
        assert out == list(range(6))
        health = parallel.pool_health()[(2, None)]
        assert health.breaks >= 1
        assert health.quarantined == 0
