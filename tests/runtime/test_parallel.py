"""The process-pool map: ordering, fallback, worker resolution."""

from __future__ import annotations

import os

from repro.runtime.parallel import (
    default_chunksize,
    parallel_map,
    resolve_workers,
)


def _square(x: int) -> int:
    return x * x


def _tag_pid(x: int) -> tuple[int, int]:
    return x, os.getpid()


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("GANA_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("GANA_WORKERS", "5")
        assert resolve_workers() == 5

    def test_garbage_env_falls_through(self, monkeypatch):
        monkeypatch.setenv("GANA_WORKERS", "many")
        assert resolve_workers() >= 1

    def test_default_is_positive(self, monkeypatch):
        monkeypatch.delenv("GANA_WORKERS", raising=False)
        assert resolve_workers() >= 1

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1


class TestChunksize:
    def test_small_input_single_chunks(self):
        assert default_chunksize(3, 8) == 1

    def test_large_input_amortizes(self):
        assert default_chunksize(1000, 4) > 1


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(_square, range(10), workers=1) == [
            x * x for x in range(10)
        ]

    def test_pool_path_preserves_order(self):
        # Forcing two workers exercises the pool even on a 1-cpu host.
        assert parallel_map(_square, range(20), workers=2) == [
            x * x for x in range(20)
        ]

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_single_item_stays_serial(self):
        result = parallel_map(_tag_pid, [3], workers=8)
        assert result == [(3, os.getpid())]

    def test_unpicklable_fn_falls_back_to_serial(self):
        # Lambdas don't pickle; the pool attempt must degrade, not raise.
        result = parallel_map(lambda x: x + 1, range(6), workers=2)
        assert result == [1, 2, 3, 4, 5, 6]

    def test_initializer_runs_in_serial_path(self):
        calls = []
        result = parallel_map(
            _square, [2, 3], workers=1, initializer=calls.append, initargs=("yes",)
        )
        assert result == [4, 9]
        assert calls == ["yes"]

    def test_worker_exception_propagates(self):
        import pytest

        def boom(x):
            raise RuntimeError("worker failure")

        with pytest.raises(RuntimeError, match="worker failure"):
            parallel_map(boom, range(3), workers=1)
