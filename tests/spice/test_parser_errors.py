"""Parser/elaboration error paths, parametrized over strict and
lenient modes.

Strict mode must raise ``SpiceSyntaxError``/``ElaborationError`` with a
line number and fix hint; lenient mode must recover, reporting *every*
problem as a ``Diagnostic`` with the correct 1-based line span.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ElaborationError, SpiceSyntaxError
from repro.runtime.resilience import ERROR
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist

#: (deck, offending line, message fragment) triples covering the
#: parser's raise sites.
MALFORMED_CARDS = [
    ("* t\nm1 n1 inp vss nmos\n.end\n", 2, "MOS card"),
    ("* t\nr1 a\n.end\n", 2, "resistor card"),
    ("* t\nc1 x\n.end\n", 2, "capacitor card"),
    ("* t\nx1\n.end\n", 2, "X card"),
    ("* t\nq1 a b c npn\n.end\n", 2, "unsupported device card"),
    ("* t\n.fakecard 1 2\n.end\n", 2, "unsupported card"),
    ("* t\n.model mymod\n.end\n", 2, ".model card needs"),
    ("* t\n.subckt\n.end\n", 2, ".subckt needs a name"),
    ("* t\n.ends\n.end\n", 2, ".ends without .subckt"),
    ("* t\nm1 d g s b unknownmodel\n.end\n", 2, "polarity"),
]

#: Three independent problems on lines 2, 4, and 6.
MULTI_ERROR_DECK = """* several problems
m1 n1 inp vss nmos
r1 a b 1k
c7 x
m2 d g s b nmos
q9 a b c npn
.end
"""


class TestStrictMode:
    @pytest.mark.parametrize("deck,line,fragment", MALFORMED_CARDS)
    def test_raises_with_line_number(self, deck, line, fragment):
        with pytest.raises(SpiceSyntaxError, match=fragment) as info:
            parse_netlist(deck, mode="strict")
        assert info.value.line == line
        assert info.value.hint  # every raise site suggests a fix
        assert f"line {line}" in str(info.value)

    def test_stops_at_first_error(self):
        with pytest.raises(SpiceSyntaxError) as info:
            parse_netlist(MULTI_ERROR_DECK, mode="strict")
        assert info.value.line == 2

    def test_unterminated_subckt(self):
        deck = ".subckt amp a b\nm1 d g s b nmos\n.end\n"
        with pytest.raises(SpiceSyntaxError, match="unterminated"):
            parse_netlist(deck, mode="strict")

    def test_strict_is_the_default(self):
        with pytest.raises(SpiceSyntaxError):
            parse_netlist("r1 a\n.end\n")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            parse_netlist(".end\n", mode="permissive")


class TestLenientMode:
    @pytest.mark.parametrize("deck,line,fragment", MALFORMED_CARDS)
    def test_recovers_with_diagnostic(self, deck, line, fragment):
        netlist = parse_netlist(deck, mode="lenient")
        assert len(netlist.diagnostics) == 1
        diag = netlist.diagnostics[0]
        assert diag.severity == ERROR
        assert fragment in diag.message
        assert diag.line == line

    def test_collects_every_error_with_line_numbers(self):
        netlist = parse_netlist(MULTI_ERROR_DECK, mode="lenient")
        assert len(netlist.diagnostics) >= 3
        assert [d.line for d in netlist.diagnostics] == [2, 4, 6]
        # The healthy cards still made it through.
        names = {d.name for d in netlist.top.devices}
        assert names == {"r1", "m2"}

    def test_unterminated_subckt_autocloses(self):
        deck = ".subckt amp a b\nm1 d g s b nmos\n.end\n"
        netlist = parse_netlist(deck, mode="lenient")
        assert any(
            "unterminated" in d.message for d in netlist.diagnostics
        )
        # The subckt keeps the devices parsed before the auto-close.
        assert "amp" in netlist.subckts
        assert {d.name for d in netlist.subckts["amp"].devices} == {"m1"}
        assert netlist.top.devices == []

    def test_continuation_span_is_recorded(self):
        deck = "* t\nm1 n1 inp\n+ vss nmos\n.end\n"
        netlist = parse_netlist(deck, mode="lenient")
        [diag] = netlist.diagnostics
        assert (diag.line, diag.end_line) == (2, 3)

    def test_clean_deck_has_no_diagnostics(self):
        netlist = parse_netlist(
            "m1 d g s b nmos\nr1 a b 1k\n.end\n", mode="lenient"
        )
        assert netlist.diagnostics == []

    def test_diagnostic_format_is_one_line(self):
        netlist = parse_netlist("r1 a\n.end\n", mode="lenient")
        [diag] = netlist.diagnostics
        rendered = diag.format()
        assert "\n" not in rendered
        assert "line 1" in rendered
        assert "hint" in rendered


class TestIncludeErrors:
    def test_missing_include_names_resolved_path(self, tmp_path):
        deck = ".include missing.sp\n.end\n"
        with pytest.raises(SpiceSyntaxError) as info:
            parse_netlist(deck, include_dir=str(tmp_path))
        message = str(info.value)
        # The satellite bugfix: name both the resolved path and the
        # include_dir it was resolved against.
        assert str(tmp_path / "missing.sp") in message
        assert f"include_dir={tmp_path}" in message
        assert info.value.line == 1

    def test_lenient_include_error_is_a_diagnostic(self, tmp_path):
        deck = ".include missing.sp\nr1 a b 1k\n.end\n"
        netlist = parse_netlist(
            deck, include_dir=str(tmp_path), mode="lenient"
        )
        assert any(
            "included file not found" in d.message
            for d in netlist.diagnostics
        )
        assert {d.name for d in netlist.top.devices} == {"r1"}

    def test_include_without_path(self, tmp_path):
        with pytest.raises(SpiceSyntaxError, match="without a path"):
            parse_netlist(".include\n.end\n", include_dir=str(tmp_path))


class TestElaborationErrors:
    UNDEFINED = "x1 a b nosuchcell\n.end\n"
    ARITY = ".subckt inv in out\nm1 out in gnd! gnd! nmos\n.ends\nx1 a inv\n.end\n"

    @pytest.mark.parametrize(
        "deck,fragment",
        [(UNDEFINED, "nosuchcell"), (ARITY, "ports")],
        ids=["undefined-subckt", "port-arity"],
    )
    def test_strict_flatten_raises(self, deck, fragment):
        netlist = parse_netlist(deck)
        with pytest.raises(ElaborationError, match=fragment):
            flatten(netlist)

    @pytest.mark.parametrize(
        "deck,fragment",
        [(UNDEFINED, "nosuchcell"), (ARITY, "ports")],
        ids=["undefined-subckt", "port-arity"],
    )
    def test_lenient_flatten_skips_instance(self, deck, fragment):
        netlist = parse_netlist(deck, mode="lenient")
        diagnostics = list(netlist.diagnostics)
        flat = flatten(netlist, diagnostics=diagnostics)
        assert any(fragment in d.message for d in diagnostics)
        assert all(dev.name != "x1/m1" for dev in flat.devices)

    def test_recursive_instantiation(self):
        deck = (
            ".subckt a x\nx1 x b\n.ends\n"
            ".subckt b x\nx1 x a\n.ends\n"
            "x0 n a\n.end\n"
        )
        netlist = parse_netlist(deck)
        with pytest.raises(ElaborationError, match="recursive"):
            flatten(netlist)
        diagnostics: list = []
        flat = flatten(netlist, diagnostics=diagnostics)
        assert any("recursive" in d.message for d in diagnostics)
        assert flat.devices == []
