"""Tokenizer behaviour: comments, continuations, parameter gluing."""

import pytest

from repro.exceptions import SpiceSyntaxError
from repro.spice.lexer import lex


class TestComments:
    def test_full_line_comment_dropped(self):
        lines = lex("* a comment\nr1 a b 1k\n")
        assert len(lines) == 1
        assert lines[0].card == "r1"

    def test_dollar_trailing_comment(self):
        (line,) = lex("r1 a b 1k $ load resistor\n")
        assert line.tokens == ("r1", "a", "b", "1k")

    def test_semicolon_trailing_comment(self):
        (line,) = lex("r1 a b 1k ; load\n")
        assert line.tokens == ("r1", "a", "b", "1k")

    def test_blank_lines_skipped(self):
        lines = lex("\n\nr1 a b 1k\n\n")
        assert len(lines) == 1


class TestContinuations:
    def test_plus_joins_lines(self):
        (line,) = lex("m1 d g s b nmos\n+ w=1u l=100n\n")
        assert line.tokens == ("m1", "d", "g", "s", "b", "nmos", "w=1u", "l=100n")

    def test_multiple_continuations(self):
        (line,) = lex("x1 a b c\n+ d e\n+ f sub\n")
        assert line.tokens == ("x1", "a", "b", "c", "d", "e", "f", "sub")

    def test_continuation_without_previous_line_fails(self):
        with pytest.raises(SpiceSyntaxError):
            lex("+ w=1u\n")

    def test_line_numbers_point_at_first_physical_line(self):
        lines = lex("* title\nr1 a b 1k\nm1 d g s b nmos\n+ w=1u\n")
        assert [l.number for l in lines] == [2, 3]


class TestTokenization:
    def test_lower_cases_everything(self):
        (line,) = lex("R1 NodeA NodeB 1K\n")
        assert line.tokens == ("r1", "nodea", "nodeb", "1k")

    def test_spaces_around_equals_glued(self):
        (line,) = lex("m1 d g s b nmos w = 1u\n")
        assert "w=1u" in line.tokens

    def test_equals_without_key_fails(self):
        with pytest.raises(SpiceSyntaxError):
            lex("= 1u\n")

    def test_card_property(self):
        (line,) = lex(".subckt foo a b\n")
        assert line.card == ".subckt"
