"""Sweep every deck under ``examples/netlists/`` through both parse
modes and both elaboration modes.

Keeps the shipped examples honest: each deck must parse strictly
(clean decks raise nothing), parse leniently with zero diagnostics,
and elaborate to the same flat circuit whether or not the DesignTree
sidecar is requested.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.spice.flatten import flatten, flatten_hierarchical
from repro.spice.parser import parse_netlist

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "netlists"
DECKS = sorted(EXAMPLES.glob("*.sp"))


def test_examples_directory_is_populated():
    assert len(DECKS) >= 5


@pytest.mark.parametrize("deck", DECKS, ids=lambda p: p.stem)
class TestExampleSweep:
    def test_strict_parse(self, deck):
        netlist = parse_netlist(deck.read_text())
        assert netlist.top is not None

    def test_lenient_parse_is_clean(self, deck):
        netlist = parse_netlist(deck.read_text(), mode="lenient")
        assert not netlist.diagnostics

    def test_both_parse_modes_agree(self, deck):
        text = deck.read_text()
        strict = flatten(parse_netlist(text))
        lenient = flatten(parse_netlist(text, mode="lenient"))
        assert [repr(d) for d in strict.devices] == [
            repr(d) for d in lenient.devices
        ]

    def test_both_elaboration_modes_agree(self, deck):
        netlist = parse_netlist(deck.read_text())
        plain = flatten(netlist)
        sided, tree = flatten_hierarchical(netlist)
        assert [repr(d) for d in sided.devices] == [
            repr(d) for d in plain.devices
        ]
        # every .subckt got a fingerprinted definition entry
        assert set(tree.definitions) == set(netlist.subckts)
        for record in tree.instances:
            assert record.fingerprint
