"""Sweep every deck under ``examples/netlists/`` through both parse
modes and both elaboration modes.

Keeps the shipped examples honest: each deck must parse strictly
(clean decks raise nothing), parse leniently with zero diagnostics,
and elaborate to the same flat circuit whether or not the DesignTree
sidecar is requested.
"""

from __future__ import annotations

from repro.spice.flatten import flatten, flatten_hierarchical
from repro.spice.parser import parse_netlist
from tests.conftest import EXAMPLE_DECK_PATHS


def test_examples_directory_is_populated():
    assert len(EXAMPLE_DECK_PATHS) >= 5


class TestExampleSweep:
    def test_parses_in_every_mode(self, example_deck_path, parse_mode):
        # deck × mode product from the shared conftest fixtures
        netlist = parse_netlist(example_deck_path.read_text(), mode=parse_mode)
        assert netlist.top is not None
        if parse_mode == "lenient":
            assert not netlist.diagnostics

    def test_both_parse_modes_agree(self, example_deck_path):
        text = example_deck_path.read_text()
        strict = flatten(parse_netlist(text))
        lenient = flatten(parse_netlist(text, mode="lenient"))
        assert [repr(d) for d in strict.devices] == [
            repr(d) for d in lenient.devices
        ]

    def test_both_elaboration_modes_agree(self, example_deck_path):
        netlist = parse_netlist(example_deck_path.read_text())
        plain = flatten(netlist)
        sided, tree = flatten_hierarchical(netlist)
        assert [repr(d) for d in sided.devices] == [
            repr(d) for d in plain.devices
        ]
        # every .subckt got a fingerprinted definition entry
        assert set(tree.definitions) == set(netlist.subckts)
        for record in tree.instances:
            assert record.fingerprint
