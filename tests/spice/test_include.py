"""``.include`` resolution (opt-in via include_dir)."""

import pytest

from repro.exceptions import SpiceSyntaxError
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist


class TestInclude:
    def test_include_resolves_relative(self, tmp_path):
        (tmp_path / "cells.sp").write_text(
            ".subckt inv in out\n"
            "mn out in gnd! gnd! nmos\n"
            "mp out in vdd! vdd! pmos\n"
            ".ends\n"
        )
        deck = '.include cells.sp\nx1 a b inv\n.end\n'
        netlist = parse_netlist(deck, include_dir=str(tmp_path))
        assert "inv" in netlist.subckts
        flat = flatten(netlist)
        assert len(flat.devices) == 2

    def test_quoted_path(self, tmp_path):
        (tmp_path / "r.sp").write_text("r1 a b 1k\n")
        netlist = parse_netlist(
            '.include "r.sp"\n.end\n', include_dir=str(tmp_path)
        )
        assert len(netlist.top.devices) == 1

    def test_nested_includes(self, tmp_path):
        sub = tmp_path / "lib"
        sub.mkdir()
        (sub / "inner.sp").write_text("c1 x y 1p\n")
        (sub / "outer.sp").write_text(".include inner.sp\nr1 a b 1k\n")
        netlist = parse_netlist(
            ".include lib/outer.sp\n.end\n", include_dir=str(tmp_path)
        )
        names = {d.name for d in netlist.top.devices}
        assert names == {"c1", "r1"}

    def test_missing_file_fails(self, tmp_path):
        with pytest.raises(SpiceSyntaxError, match="not found"):
            parse_netlist(".include nope.sp\n.end\n", include_dir=str(tmp_path))

    def test_include_cycle_detected(self, tmp_path):
        (tmp_path / "a.sp").write_text(".include b.sp\n")
        (tmp_path / "b.sp").write_text(".include a.sp\n")
        with pytest.raises(SpiceSyntaxError, match="deep"):
            parse_netlist(".include a.sp\n.end\n", include_dir=str(tmp_path))

    def test_include_without_path_fails(self, tmp_path):
        with pytest.raises(SpiceSyntaxError):
            parse_netlist(".include\n.end\n", include_dir=str(tmp_path))

    def test_includes_skipped_without_dir(self):
        # Safe default: include cards are ignored like analysis cards.
        netlist = parse_netlist(".include secrets.sp\nr1 a b 1k\n.end\n")
        assert len(netlist.top.devices) == 1

    def test_model_in_included_file_visible(self, tmp_path):
        (tmp_path / "models.sp").write_text(".model mydev pmos\n")
        deck = ".include models.sp\nm1 d g s b mydev\n.end\n"
        netlist = parse_netlist(deck, include_dir=str(tmp_path))
        from repro.spice.netlist import DeviceKind

        assert netlist.top.devices[0].kind is DeviceKind.PMOS
