"""Hierarchy flattening semantics."""

import pytest

from repro.exceptions import ElaborationError
from repro.spice.flatten import flatten, instance_path
from repro.spice.parser import parse_netlist
from tests.conftest import HIERARCHICAL_DECK


class TestFlatten:
    def test_two_level_expansion(self):
        flat = flatten(parse_netlist(HIERARCHICAL_DECK))
        names = sorted(d.name for d in flat.devices)
        assert names == [
            "rload",
            "xbuf/x1/mn",
            "xbuf/x1/mp",
            "xbuf/x2/mn",
            "xbuf/x2/mp",
        ]

    def test_port_connection(self):
        flat = flatten(parse_netlist(HIERARCHICAL_DECK))
        first = flat.device("xbuf/x1/mn")
        assert first.pin_map["g"] == "a"  # outer net through two levels
        second = flat.device("xbuf/x2/mn")
        assert second.pin_map["d"] == "b"

    def test_internal_net_prefixing(self):
        flat = flatten(parse_netlist(HIERARCHICAL_DECK))
        first = flat.device("xbuf/x1/mn")
        assert first.pin_map["d"] == "xbuf/mid"

    def test_global_nets_not_prefixed(self):
        flat = flatten(parse_netlist(HIERARCHICAL_DECK))
        assert flat.device("xbuf/x1/mn").pin_map["s"] == "gnd!"
        assert flat.device("xbuf/x1/mp").pin_map["s"] == "vdd!"

    def test_power_nets_global_by_convention(self):
        deck = """
.subckt cell a
r1 a vdd! 1k
.ends
x1 n cell
.end
"""
        flat = flatten(parse_netlist(deck))
        assert flat.device("x1/r1").pin_map["n"] == "vdd!"

    def test_missing_subckt_fails(self):
        with pytest.raises(ElaborationError):
            flatten(parse_netlist("x1 a b nosuch\n.end\n"))

    def test_port_arity_mismatch_fails(self):
        deck = ".subckt s a b\nr1 a b 1k\n.ends\nx1 n s\n.end\n"
        with pytest.raises(ElaborationError):
            flatten(parse_netlist(deck))

    def test_recursive_instantiation_fails(self):
        deck = """
.subckt loop a
x1 a loop
.ends
x0 n loop
.end
"""
        with pytest.raises(ElaborationError):
            flatten(parse_netlist(deck))

    def test_flat_result_has_no_instances(self):
        flat = flatten(parse_netlist(HIERARCHICAL_DECK))
        assert flat.is_flat()

    def test_top_ports_preserved(self):
        deck = ".subckt s a\nr1 a gnd! 1k\n.ends\nx1 n s\n.end\n"
        netlist = parse_netlist(deck)
        netlist.top.ports = ("n",)
        flat = flatten(netlist)
        assert flat.ports == ("n",)


class TestInstancePath:
    def test_path_split(self):
        assert instance_path("xf/xo/m1") == ("xf", "xo", "m1")

    def test_flat_name(self):
        assert instance_path("m1") == ("m1",)


class TestInstanceMultiplier:
    def test_mos_multiplier_scales(self):
        deck = """
.subckt cell a
m1 a a gnd! gnd! nmos w=1u m=2
.ends
x1 n cell m=3
.end
"""
        flat = flatten(parse_netlist(deck))
        assert flat.device("x1/m1").param("m") == pytest.approx(6.0)

    def test_capacitor_scales_up(self):
        deck = ".subckt cell a\nc1 a gnd! 1p\n.ends\nx1 n cell m=4\n.end\n"
        flat = flatten(parse_netlist(deck))
        assert flat.device("x1/c1").value == pytest.approx(4e-12)

    def test_resistor_scales_down(self):
        deck = ".subckt cell a\nr1 a gnd! 1k\n.ends\nx1 n cell m=4\n.end\n"
        flat = flatten(parse_netlist(deck))
        assert flat.device("x1/r1").value == pytest.approx(250.0)

    def test_nested_multipliers_compose(self):
        deck = """
.subckt inner a
m1 a a gnd! gnd! nmos
.ends
.subckt outer a
x1 a inner m=2
.ends
x0 n outer m=3
.end
"""
        flat = flatten(parse_netlist(deck))
        assert flat.device("x0/x1/m1").param("m") == pytest.approx(6.0)

    def test_no_multiplier_untouched(self):
        deck = ".subckt cell a\nr1 a gnd! 1k\n.ends\nx1 n cell\n.end\n"
        flat = flatten(parse_netlist(deck))
        assert flat.device("x1/r1").value == pytest.approx(1e3)
