"""Hierarchy flattening semantics."""

import pytest

from repro.exceptions import ElaborationError
from repro.spice.flatten import flatten, instance_path
from repro.spice.parser import parse_netlist
from tests.conftest import HIERARCHICAL_DECK


class TestFlatten:
    def test_two_level_expansion(self):
        flat = flatten(parse_netlist(HIERARCHICAL_DECK))
        names = sorted(d.name for d in flat.devices)
        assert names == [
            "rload",
            "xbuf/x1/mn",
            "xbuf/x1/mp",
            "xbuf/x2/mn",
            "xbuf/x2/mp",
        ]

    def test_port_connection(self):
        flat = flatten(parse_netlist(HIERARCHICAL_DECK))
        first = flat.device("xbuf/x1/mn")
        assert first.pin_map["g"] == "a"  # outer net through two levels
        second = flat.device("xbuf/x2/mn")
        assert second.pin_map["d"] == "b"

    def test_internal_net_prefixing(self):
        flat = flatten(parse_netlist(HIERARCHICAL_DECK))
        first = flat.device("xbuf/x1/mn")
        assert first.pin_map["d"] == "xbuf/mid"

    def test_global_nets_not_prefixed(self):
        flat = flatten(parse_netlist(HIERARCHICAL_DECK))
        assert flat.device("xbuf/x1/mn").pin_map["s"] == "gnd!"
        assert flat.device("xbuf/x1/mp").pin_map["s"] == "vdd!"

    def test_power_nets_global_by_convention(self):
        deck = """
.subckt cell a
r1 a vdd! 1k
.ends
x1 n cell
.end
"""
        flat = flatten(parse_netlist(deck))
        assert flat.device("x1/r1").pin_map["n"] == "vdd!"

    def test_missing_subckt_fails(self):
        with pytest.raises(ElaborationError):
            flatten(parse_netlist("x1 a b nosuch\n.end\n"))

    def test_port_arity_mismatch_fails(self):
        deck = ".subckt s a b\nr1 a b 1k\n.ends\nx1 n s\n.end\n"
        with pytest.raises(ElaborationError):
            flatten(parse_netlist(deck))

    def test_recursive_instantiation_fails(self):
        deck = """
.subckt loop a
x1 a loop
.ends
x0 n loop
.end
"""
        with pytest.raises(ElaborationError):
            flatten(parse_netlist(deck))

    def test_flat_result_has_no_instances(self):
        flat = flatten(parse_netlist(HIERARCHICAL_DECK))
        assert flat.is_flat()

    def test_top_ports_preserved(self):
        deck = ".subckt s a\nr1 a gnd! 1k\n.ends\nx1 n s\n.end\n"
        netlist = parse_netlist(deck)
        netlist.top.ports = ("n",)
        flat = flatten(netlist)
        assert flat.ports == ("n",)


class TestInstancePath:
    def test_path_split(self):
        assert instance_path("xf/xo/m1") == ("xf", "xo", "m1")

    def test_flat_name(self):
        assert instance_path("m1") == ("m1",)


class TestInstanceMultiplier:
    def test_mos_multiplier_scales(self):
        deck = """
.subckt cell a
m1 a a gnd! gnd! nmos w=1u m=2
.ends
x1 n cell m=3
.end
"""
        flat = flatten(parse_netlist(deck))
        assert flat.device("x1/m1").param("m") == pytest.approx(6.0)

    def test_capacitor_scales_up(self):
        deck = ".subckt cell a\nc1 a gnd! 1p\n.ends\nx1 n cell m=4\n.end\n"
        flat = flatten(parse_netlist(deck))
        assert flat.device("x1/c1").value == pytest.approx(4e-12)

    def test_resistor_scales_down(self):
        deck = ".subckt cell a\nr1 a gnd! 1k\n.ends\nx1 n cell m=4\n.end\n"
        flat = flatten(parse_netlist(deck))
        assert flat.device("x1/r1").value == pytest.approx(250.0)

    def test_nested_multipliers_compose(self):
        deck = """
.subckt inner a
m1 a a gnd! gnd! nmos
.ends
.subckt outer a
x1 a inner m=2
.ends
x0 n outer m=3
.end
"""
        flat = flatten(parse_netlist(deck))
        assert flat.device("x0/x1/m1").param("m") == pytest.approx(6.0)

    def test_no_multiplier_untouched(self):
        deck = ".subckt cell a\nr1 a gnd! 1k\n.ends\nx1 n cell\n.end\n"
        flat = flatten(parse_netlist(deck))
        assert flat.device("x1/r1").value == pytest.approx(1e3)


class TestDesignTree:
    """Hierarchy-preserving mode: same flat circuit + a DesignTree."""

    def _elaborate(self, deck=HIERARCHICAL_DECK):
        from repro.spice.flatten import flatten_hierarchical

        return flatten_hierarchical(parse_netlist(deck))

    def test_flat_circuit_identical_to_flatten(self):
        netlist = parse_netlist(HIERARCHICAL_DECK)
        plain = flatten(netlist)
        hier_flat, _tree = self._elaborate()
        assert [d.name for d in hier_flat.devices] == [
            d.name for d in plain.devices
        ]
        assert [d.pins for d in hier_flat.devices] == [
            d.pins for d in plain.devices
        ]
        assert hier_flat.ports == plain.ports

    def test_definitions_fingerprinted(self):
        _flat, tree = self._elaborate()
        assert set(tree.definitions) == {"inverter", "buffer"}
        inv = tree.definitions["inverter"]
        assert inv.ports == ("in", "out")
        assert inv.n_devices == 2
        assert inv.n_subinstances == 0
        assert len(inv.fingerprint) == 64
        buf = tree.definitions["buffer"]
        assert buf.n_subinstances == 2
        assert buf.fingerprint != inv.fingerprint

    def test_fingerprints_stable_across_parses(self):
        _f1, t1 = self._elaborate()
        _f2, t2 = self._elaborate()
        assert {k: d.fingerprint for k, d in t1.definitions.items()} == {
            k: d.fingerprint for k, d in t2.definitions.items()
        }

    def test_fingerprints_sensitive_and_transitive(self):
        edited = HIERARCHICAL_DECK.replace("w=1u", "w=9u")
        _f1, base = self._elaborate()
        _f2, changed = self._elaborate(edited)
        # Editing the inverter body changes the inverter fingerprint
        # AND (Merkle-style) the enclosing buffer's.
        assert (
            base.definitions["inverter"].fingerprint
            != changed.definitions["inverter"].fingerprint
        )
        assert (
            base.definitions["buffer"].fingerprint
            != changed.definitions["buffer"].fingerprint
        )

    def test_instance_table(self):
        _flat, tree = self._elaborate()
        by_path = {rec.path: rec for rec in tree.instances}
        assert set(by_path) == {"xbuf", "xbuf/x1", "xbuf/x2"}
        assert by_path["xbuf"].parent == ""
        assert by_path["xbuf/x1"].parent == "xbuf"
        assert by_path["xbuf/x1"].definition == "inverter"
        assert dict(by_path["xbuf/x1"].bindings) == {
            "in": "a",
            "out": "xbuf/mid",
        }
        assert dict(by_path["xbuf/x2"].bindings) == {
            "in": "xbuf/mid",
            "out": "b",
        }

    def test_bodies_per_unique_group(self):
        _flat, tree = self._elaborate()
        groups = tree.groups()
        inv_fp = tree.definitions["inverter"].fingerprint
        assert groups[(inv_fp, 1.0)] == ("xbuf/x1", "xbuf/x2")
        body = tree.bodies[(inv_fp, 1.0)]
        assert sorted(d.name for d in body.devices) == ["mn", "mp"]
        assert tree.n_unique() == 2  # inverter + buffer groups

    def test_multiplier_splits_groups(self):
        deck = """
.subckt cell a
r1 a gnd! 1k
.ends
x1 n1 cell
x2 n2 cell m=2
.end
"""
        _flat, tree = self._elaborate(deck)
        fp = tree.definitions["cell"].fingerprint
        assert set(tree.groups()) == {(fp, 1.0), (fp, 2.0)}
        assert tree.bodies[(fp, 2.0)].devices[0].value == 500.0

    def test_lenient_skips_mirror_flat_circuit(self):
        from repro.spice.flatten import flatten_hierarchical

        deck = HIERARCHICAL_DECK.replace(
            ".end\n", "xbad z nosuch\n.end\n"
        )
        diags: list = []
        flat, tree = flatten_hierarchical(parse_netlist(deck), diags)
        assert diags, "the bad instance was diagnosed"
        assert "xbad" not in {rec.path for rec in tree.instances}
        assert sorted(d.name for d in flat.devices) == sorted(
            d.name for d in flatten(parse_netlist(HIERARCHICAL_DECK)).devices
        )

    def test_record_for(self):
        _flat, tree = self._elaborate()
        assert tree.record_for("xbuf/x1").definition == "inverter"
        assert tree.record_for("nope") is None


class TestFingerprintMemo:
    def test_same_netlist_object_hashed_once(self, monkeypatch):
        import importlib

        # the package re-exports the flatten() function under the same
        # name, so fetch the module itself
        mod = importlib.import_module("repro.spice.flatten")

        calls = {"n": 0}
        real = mod._compute_definition_fingerprints

        def counting(netlist):
            calls["n"] += 1
            return real(netlist)

        monkeypatch.setattr(
            mod, "_compute_definition_fingerprints", counting
        )
        netlist = parse_netlist(HIERARCHICAL_DECK)
        first = mod.definition_fingerprints(netlist)
        second = mod.definition_fingerprints(netlist)
        assert calls["n"] == 1
        assert first == second

    def test_distinct_objects_rehash(self):
        from repro.spice.flatten import definition_fingerprints

        a = definition_fingerprints(parse_netlist(HIERARCHICAL_DECK))
        b = definition_fingerprints(parse_netlist(HIERARCHICAL_DECK))
        assert a == b  # content equal even across distinct objects
