"""SPICE numeric-literal parsing and formatting."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import SpiceSyntaxError
from repro.spice.units import (
    format_spice_number,
    is_spice_number,
    parse_spice_number,
)

pytestmark = pytest.mark.property


class TestParse:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("1", 1.0),
            ("0", 0.0),
            ("-3.5", -3.5),
            ("+2", 2.0),
            (".5", 0.5),
            ("1e3", 1e3),
            ("1E-6", 1e-6),
            ("2.5e+2", 250.0),
        ],
    )
    def test_plain_numbers(self, text, expected):
        assert parse_spice_number(text) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "text, expected",
        [
            ("1f", 1e-15),
            ("1p", 1e-12),
            ("1n", 1e-9),
            ("1u", 1e-6),
            ("1m", 1e-3),
            ("1k", 1e3),
            ("1meg", 1e6),
            ("1g", 1e9),
            ("1t", 1e12),
            ("1a", 1e-18),
        ],
    )
    def test_engineering_suffixes(self, text, expected):
        assert parse_spice_number(text) == pytest.approx(expected)

    def test_milli_vs_mega(self):
        # The classic SPICE trap: m is milli, meg is mega.
        assert parse_spice_number("1m") == pytest.approx(1e-3)
        assert parse_spice_number("1meg") == pytest.approx(1e6)

    def test_mil_suffix(self):
        assert parse_spice_number("1mil") == pytest.approx(25.4e-6)

    def test_suffixes_case_insensitive(self):
        assert parse_spice_number("10MEG") == pytest.approx(1e7)
        assert parse_spice_number("2.2U") == pytest.approx(2.2e-6)

    def test_trailing_unit_ignored(self):
        assert parse_spice_number("10uF") == pytest.approx(10e-6)
        assert parse_spice_number("1.5kOhm") == pytest.approx(1500.0)
        assert parse_spice_number("5V") == pytest.approx(5.0)

    @pytest.mark.parametrize("text", ["", "abc", "1..2", "--3", "u1"])
    def test_rejects_non_numbers(self, text):
        with pytest.raises(SpiceSyntaxError):
            parse_spice_number(text)

    def test_dangling_exponent_is_unit_tag(self):
        # SPICE ignores unknown trailing letters: "1e" is 1.0 with a
        # (meaningless) unit tag, matching simulator behaviour.
        assert parse_spice_number("1e") == pytest.approx(1.0)

    def test_is_spice_number(self):
        assert is_spice_number("2.2u")
        assert not is_spice_number("nmos")


class TestFormat:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (0.0, "0"),
            (1500.0, "1.5k"),
            (2.2e-6, "2.2u"),
            (1e7, "10meg"),
            (-3e-9, "-3n"),
        ],
    )
    def test_known_values(self, value, expected):
        assert format_spice_number(value) == expected

    @given(
        st.floats(
            min_value=1e-17,
            max_value=1e13,
            allow_nan=False,
            allow_infinity=False,
        )
    )
    def test_roundtrip_positive(self, value):
        text = format_spice_number(value)
        back = parse_spice_number(text)
        assert math.isclose(back, value, rel_tol=1e-5)

    @given(
        st.floats(
            min_value=1e-15,
            max_value=1e12,
            allow_nan=False,
            allow_infinity=False,
        )
    )
    def test_roundtrip_negative(self, value):
        text = format_spice_number(-value)
        assert math.isclose(parse_spice_number(text), -value, rel_tol=1e-5)
