"""Writer round-trips and formatting, including hypothesis round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice.flatten import flatten
from repro.spice.netlist import (
    Circuit,
    DeviceKind,
    Netlist,
    make_mos,
    make_passive,
)
from repro.spice.parser import parse_netlist
from repro.spice.writer import write_circuit, write_netlist
from tests.conftest import DIFF_OTA_DECK, HIERARCHICAL_DECK

pytestmark = pytest.mark.property


def _roundtrip(netlist: Netlist) -> Netlist:
    return parse_netlist(write_netlist(netlist))


class TestRoundTrip:
    def test_flat_deck(self):
        original = parse_netlist(DIFF_OTA_DECK)
        back = _roundtrip(original)
        assert len(back.top.devices) == len(original.top.devices)
        for a, b in zip(original.top.devices, back.top.devices):
            assert a.kind is b.kind
            assert a.nets == b.nets

    def test_hierarchical_deck(self):
        original = parse_netlist(HIERARCHICAL_DECK)
        back = _roundtrip(original)
        assert set(back.subckts) == set(original.subckts)
        flat_a = flatten(original)
        flat_b = flatten(back)
        assert len(flat_a.devices) == len(flat_b.devices)

    def test_flattened_names_are_legal_cards(self):
        flat = flatten(parse_netlist(HIERARCHICAL_DECK))
        text = write_circuit(flat)
        back = parse_netlist(text)
        assert len(back.top.devices) == len(flat.devices)

    def test_globals_written(self):
        netlist = parse_netlist(".global vdd! gnd!\nr1 a vdd! 1k\n.end\n")
        assert ".global vdd! gnd!" in write_netlist(netlist)

    def test_value_formatting(self):
        c = Circuit(name="t")
        c.add(make_passive("r1", DeviceKind.RESISTOR, "a", "b", 4700.0))
        text = write_circuit(c)
        assert "4.7k" in text


# Random circuit strategy: a handful of devices over a small net pool.
_nets = st.sampled_from(["n1", "n2", "n3", "vdd!", "gnd!", "in", "out"])


@st.composite
def _random_circuit(draw):
    circuit = Circuit(name="rand")
    n_mos = draw(st.integers(min_value=0, max_value=5))
    n_passive = draw(st.integers(min_value=0, max_value=5))
    if n_mos + n_passive == 0:
        n_mos = 1
    for i in range(n_mos):
        kind = draw(st.sampled_from([DeviceKind.NMOS, DeviceKind.PMOS]))
        circuit.add(
            make_mos(
                f"m{i}",
                kind,
                draw(_nets),
                draw(_nets),
                draw(_nets),
                w=draw(st.sampled_from([1e-6, 2e-6, 8e-6])),
            )
        )
    for i in range(n_passive):
        kind = draw(
            st.sampled_from(
                [DeviceKind.RESISTOR, DeviceKind.CAPACITOR, DeviceKind.INDUCTOR]
            )
        )
        circuit.add(
            make_passive(
                f"{kind.value[0]}{i}",
                kind,
                draw(_nets),
                draw(_nets),
                draw(st.sampled_from([1e3, 1e-12, 2e-9])),
            )
        )
    return circuit


class TestHypothesisRoundTrip:
    @given(_random_circuit())
    @settings(max_examples=50, deadline=None)
    def test_write_parse_preserves_structure(self, circuit):
        back = parse_netlist(write_circuit(circuit)).top
        assert len(back.devices) == len(circuit.devices)
        for a, b in zip(circuit.devices, back.devices):
            assert a.kind is b.kind
            assert a.nets == b.nets
            if a.value is not None:
                assert b.value == pytest.approx(a.value, rel=1e-4)
