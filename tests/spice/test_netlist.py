"""Netlist data-model invariants."""

import pytest

from repro.spice.netlist import (
    Circuit,
    Device,
    DeviceKind,
    is_ground_net,
    is_power_net,
    is_supply_net,
    make_mos,
    make_passive,
)


class TestNetNameConventions:
    @pytest.mark.parametrize("net", ["vdd", "vdd!", "VDD", "vcc", "avdd", "vdd2"])
    def test_supply_nets(self, net):
        assert is_supply_net(net)

    @pytest.mark.parametrize("net", ["gnd", "gnd!", "0", "vss", "agnd", "VSS"])
    def test_ground_nets(self, net):
        assert is_ground_net(net)

    @pytest.mark.parametrize("net", ["vin", "n1", "vout", "vbias", "tail"])
    def test_signal_nets(self, net):
        assert not is_power_net(net)

    def test_supply_is_not_ground(self):
        assert not is_ground_net("vdd!")
        assert not is_supply_net("gnd!")


class TestPowerNetMemo:
    """The is_power_net memo must not leak across rail conventions.

    The old ``functools.lru_cache`` was process-wide: a run under a
    monkeypatched ``SUPPLY_NET_RE`` left poisoned answers behind for
    every later run in the process.  The explicit memo is cleared at
    the start of each pipeline run via :func:`reset_power_net_memo`.
    """

    def test_reset_drops_stale_answers(self, monkeypatch):
        import re

        from repro.spice import netlist

        netlist.reset_power_net_memo()
        monkeypatch.setattr(
            netlist, "SUPPLY_NET_RE", re.compile(r"^railx$", re.IGNORECASE)
        )
        assert is_power_net("railx")  # memoized under the patched regex
        monkeypatch.undo()
        # Stale without the reset — this is the poisoned-cache hazard.
        assert netlist._POWER_NET_MEMO.get("railx") is True
        netlist.reset_power_net_memo()
        assert not is_power_net("railx")

    def test_back_to_back_runs_use_their_own_conventions(
        self, monkeypatch, quick_ota_annotator
    ):
        """Two pipeline runs, different conventions: no cross-talk.

        Run 1 treats ``railx`` as a supply (so devices tied to it read
        as rail-connected); run 2 uses stock conventions, where
        ``railx`` is an ordinary signal net.  With the old process-wide
        ``lru_cache`` run 2 inherited run 1's answer.
        """
        import re

        from repro.core.pipeline import GanaPipeline
        from repro.spice import netlist

        deck = """
        * deck whose rail name is convention-dependent
        m1 out in railx gnd! nmos w=1u l=100n
        m2 out in vdd! vdd! pmos w=2u l=100n
        c1 railx gnd! 1p
        .end
        """
        pipeline = GanaPipeline(annotator=quick_ota_annotator)

        monkeypatch.setattr(
            netlist,
            "SUPPLY_NET_RE",
            re.compile(r"^(vdd[!]?|railx)$", re.IGNORECASE),
        )
        first = pipeline.run(deck)
        # railx is a rail here, so c1 bridges two rails: a decap,
        # removed by preprocessing.
        assert "c1" in first.preprocess_report.removed_names

        monkeypatch.undo()
        second = pipeline.run(deck)
        # Under stock conventions railx is a signal net again, so c1
        # is an ordinary load capacitor and must survive.  The old
        # lru_cache leaked run 1's answer and removed it here too.
        assert not netlist.is_power_net("railx")
        assert "c1" not in second.preprocess_report.removed_names
        assert "c1" in {d.name for d in second.graph.elements}


class TestDevice:
    def test_mos_terminals_enforced(self):
        with pytest.raises(ValueError):
            Device(
                name="m1",
                kind=DeviceKind.NMOS,
                pins=(("p", "a"), ("n", "b")),
            )

    def test_passive_terminals_enforced(self):
        with pytest.raises(ValueError):
            Device(
                name="r1",
                kind=DeviceKind.RESISTOR,
                pins=(("d", "a"), ("g", "b"), ("s", "c"), ("b", "d")),
            )

    def test_param_lookup_case_insensitive(self):
        dev = make_mos("m1", DeviceKind.NMOS, "d", "g", "s", w=2e-6)
        assert dev.param("W") == pytest.approx(2e-6)
        assert dev.param("nf") is None
        assert dev.param("nf", 1.0) == 1.0

    def test_renamed_remaps_nets(self):
        dev = make_mos("m1", DeviceKind.NMOS, "d", "g", "s")
        renamed = dev.renamed("x/m1", {"d": "x/d", "g": "vb"})
        assert renamed.name == "x/m1"
        assert renamed.pin_map["d"] == "x/d"
        assert renamed.pin_map["g"] == "vb"
        assert renamed.pin_map["s"] == "s"

    def test_kind_predicates(self):
        assert DeviceKind.NMOS.is_transistor
        assert DeviceKind.CAPACITOR.is_passive
        assert DeviceKind.VSOURCE.is_source
        assert not DeviceKind.RESISTOR.is_transistor

    def test_make_mos_default_body(self):
        n = make_mos("m1", DeviceKind.NMOS, "d", "g", "s")
        p = make_mos("m2", DeviceKind.PMOS, "d", "g", "s")
        assert n.pin_map["b"] == "gnd!"
        assert p.pin_map["b"] == "vdd!"

    def test_make_mos_rejects_passive_kind(self):
        with pytest.raises(ValueError):
            make_mos("r1", DeviceKind.RESISTOR, "a", "b", "c")

    def test_make_passive_rejects_mos_kind(self):
        with pytest.raises(ValueError):
            make_passive("m1", DeviceKind.NMOS, "a", "b", 1.0)


class TestCircuit:
    def _circuit(self) -> Circuit:
        c = Circuit(name="c", ports=("in", "out"))
        c.add(make_mos("m1", DeviceKind.NMOS, "out", "in", "gnd!"))
        c.add(make_passive("r1", DeviceKind.RESISTOR, "vdd!", "out", 1e3))
        return c

    def test_nets_first_seen_order(self):
        c = self._circuit()
        assert c.nets[:2] == ("in", "out")
        assert set(c.nets) == {"in", "out", "gnd!", "vdd!"}

    def test_device_lookup(self):
        c = self._circuit()
        assert c.device("m1").kind is DeviceKind.NMOS
        with pytest.raises(KeyError):
            c.device("nope")

    def test_count_and_transistors(self):
        c = self._circuit()
        assert c.count(DeviceKind.NMOS) == 1
        assert c.count(DeviceKind.RESISTOR) == 1
        assert [d.name for d in c.transistors()] == ["m1"]

    def test_is_flat(self):
        c = self._circuit()
        assert c.is_flat()
