"""Parser behaviour: device cards, subckts, models, error reporting."""

import pytest

from repro.exceptions import SpiceSyntaxError
from repro.spice.netlist import DeviceKind
from repro.spice.parser import parse_netlist


class TestMosCards:
    def test_basic_nmos(self):
        netlist = parse_netlist("m1 d g s b nmos w=1u l=100n\n.end\n")
        (dev,) = netlist.top.devices
        assert dev.kind is DeviceKind.NMOS
        assert dev.pin_map == {"d": "d", "g": "g", "s": "s", "b": "b"}
        assert dev.param("w") == pytest.approx(1e-6)
        assert dev.param("l") == pytest.approx(100e-9)

    def test_pmos_by_model_name(self):
        netlist = parse_netlist("m1 d g s b pch w=1u\n.end\n")
        assert netlist.top.devices[0].kind is DeviceKind.PMOS

    @pytest.mark.parametrize("model", ["pmos", "pfet", "pch", "p33"])
    def test_pmos_name_patterns(self, model):
        netlist = parse_netlist(f"m1 d g s b {model}\n.end\n")
        assert netlist.top.devices[0].kind is DeviceKind.PMOS

    def test_model_card_overrides_name_heuristic(self):
        deck = ".model weird pmos\nm1 d g s b weird\n.end\n"
        netlist = parse_netlist(deck)
        assert netlist.top.devices[0].kind is DeviceKind.PMOS

    def test_model_card_after_device(self):
        deck = "m1 d g s b mymodel\n.model mymodel nmos\n.end\n"
        netlist = parse_netlist(deck)
        assert netlist.top.devices[0].kind is DeviceKind.NMOS

    def test_unresolvable_polarity_fails(self):
        with pytest.raises(SpiceSyntaxError):
            parse_netlist("m1 d g s b qqq17\n.end\n")

    def test_too_few_nets_fails(self):
        with pytest.raises(SpiceSyntaxError):
            parse_netlist("m1 d g s\n.end\n")


class TestTwoTerminal:
    def test_resistor_value(self):
        netlist = parse_netlist("r1 a b 4.7k\n.end\n")
        dev = netlist.top.devices[0]
        assert dev.kind is DeviceKind.RESISTOR
        assert dev.value == pytest.approx(4700.0)

    def test_capacitor_inductor(self):
        netlist = parse_netlist("c1 a b 2p\nl1 b c 3n\n.end\n")
        kinds = [d.kind for d in netlist.top.devices]
        assert kinds == [DeviceKind.CAPACITOR, DeviceKind.INDUCTOR]

    def test_vsource_dc_spec(self):
        netlist = parse_netlist("vdd vdd! 0 dc 1.8\n.end\n")
        assert netlist.top.devices[0].value == pytest.approx(1.8)

    def test_isource(self):
        netlist = parse_netlist("ib vdd! nb 10u\n.end\n")
        dev = netlist.top.devices[0]
        assert dev.kind is DeviceKind.ISOURCE
        assert dev.value == pytest.approx(10e-6)

    def test_passive_with_model_name(self):
        netlist = parse_netlist("r1 a b rpoly r=2k\n.end\n")
        dev = netlist.top.devices[0]
        assert dev.model == "rpoly"
        assert dev.value == pytest.approx(2000.0)


class TestSubckts:
    def test_definition_and_instance(self):
        deck = """
.subckt inv in out
mn out in gnd! gnd! nmos
mp out in vdd! vdd! pmos
.ends
x1 a b inv
.end
"""
        netlist = parse_netlist(deck)
        assert "inv" in netlist.subckts
        inv = netlist.subckt("inv")
        assert inv.ports == ("in", "out")
        assert len(inv.devices) == 2
        (inst,) = netlist.top.instances
        assert inst.subckt == "inv"
        assert inst.nets == ("a", "b")

    def test_nested_subckts(self):
        deck = """
.subckt outer a
.subckt inner b
r1 b gnd! 1k
.ends
x1 a inner
.ends
x2 n outer
.end
"""
        netlist = parse_netlist(deck)
        assert set(netlist.subckts) == {"outer", "inner"}

    def test_unterminated_subckt_fails(self):
        with pytest.raises(SpiceSyntaxError):
            parse_netlist(".subckt foo a\nr1 a gnd! 1k\n.end\n")

    def test_ends_without_subckt_fails(self):
        with pytest.raises(SpiceSyntaxError):
            parse_netlist(".ends\n.end\n")

    def test_case_insensitive_lookup(self):
        deck = ".subckt INV a b\nr1 a b 1k\n.ends\n.end\n"
        netlist = parse_netlist(deck)
        assert netlist.subckt("inv").name == "inv"


class TestDirectives:
    def test_title(self):
        netlist = parse_netlist(".title my amplifier\nr1 a b 1k\n.end\n")
        assert netlist.title == "my amplifier"

    def test_global(self):
        netlist = parse_netlist(".global vdd! gnd!\nr1 a b 1k\n.end\n")
        assert netlist.globals_ == ("vdd!", "gnd!")

    def test_ignored_analysis_cards(self):
        deck = ".tran 1n 1u\n.op\n.options reltol=1e-4\nr1 a b 1k\n.end\n"
        netlist = parse_netlist(deck)
        assert len(netlist.top.devices) == 1

    def test_unknown_dot_card_fails(self):
        with pytest.raises(SpiceSyntaxError):
            parse_netlist(".frobnicate\n.end\n")

    def test_unknown_device_letter_fails(self):
        with pytest.raises(SpiceSyntaxError):
            parse_netlist("q1 c b e npn\n.end\n")

    def test_error_carries_line_number(self):
        with pytest.raises(SpiceSyntaxError, match="line 3"):
            parse_netlist("* t\nr1 a b 1k\nq1 c b e npn\n.end\n")


class TestInstances:
    def test_instance_params(self):
        deck = ".subckt s a\nr1 a gnd! 1k\n.ends\nx1 n s m=2\n.end\n"
        netlist = parse_netlist(deck)
        (inst,) = netlist.top.instances
        assert dict(inst.params) == {"m": 2.0}

    def test_instance_needs_subckt_name(self):
        with pytest.raises(SpiceSyntaxError):
            parse_netlist("x1\n.end\n")
