"""Recognition preprocessing: merges, dummies, decaps (Sec. II-B)."""

import pytest

from repro.spice.flatten import flatten
from repro.spice.netlist import DeviceKind
from repro.spice.parser import parse_netlist
from repro.spice.preprocess import preprocess


def _prep(deck: str):
    flat = flatten(parse_netlist(deck))
    return preprocess(flat)


class TestParallelMos:
    DECK = """
m1 d g s gnd! nmos w=1u l=100n m=2
m2 d g s gnd! nmos w=1u l=100n m=3
m3 d2 g s gnd! nmos w=1u l=100n
.end
"""

    def test_merged_to_one(self):
        reduced, _report = _prep(self.DECK)
        names = {d.name for d in reduced.devices}
        assert names == {"m1", "m3"}

    def test_multiplier_summed(self):
        reduced, _report = _prep(self.DECK)
        assert reduced.device("m1").param("m") == pytest.approx(5.0)

    def test_report_maps_back(self):
        _reduced, report = _prep(self.DECK)
        assert sorted(report.originals_of("m1")) == ["m1", "m2"]
        assert report.originals_of("m3") == ["m3"]

    def test_different_model_not_merged(self):
        deck = """
m1 d g s gnd! nmos
m2 d g s vdd! pmos
.end
"""
        reduced, _ = _prep(deck)
        assert len(reduced.devices) == 2


class TestSeriesMos:
    DECK = """
m1 out g mid gnd! nmos w=1u l=200n
m2 mid g gnd! gnd! nmos w=1u l=200n
.end
"""

    def test_stack_collapsed(self):
        reduced, _ = _prep(self.DECK)
        assert len(reduced.devices) == 1

    def test_length_summed(self):
        reduced, _ = _prep(self.DECK)
        assert reduced.devices[0].param("l") == pytest.approx(400e-9)

    def test_endpoints_preserved(self):
        reduced, _ = _prep(self.DECK)
        nets = set(reduced.devices[0].nets)
        assert "out" in nets and "gnd!" in nets and "mid" not in nets

    def test_different_gate_not_collapsed(self):
        deck = """
m1 out g1 mid gnd! nmos l=200n
m2 mid g2 gnd! gnd! nmos l=200n
.end
"""
        reduced, _ = _prep(deck)
        assert len(reduced.devices) == 2

    def test_tapped_middle_net_not_collapsed(self):
        # A third device touching the mid net makes it a real node.
        deck = """
m1 out g mid gnd! nmos l=200n
m2 mid g gnd! gnd! nmos l=200n
r1 mid probe 1k
.end
"""
        reduced, _ = _prep(deck)
        assert len(reduced.devices) == 3


class TestDummies:
    def test_drain_source_shorted_removed(self):
        deck = "m1 a g a gnd! nmos\nr1 a b 1k\n.end\n"
        reduced, report = _prep(deck)
        assert [d.name for d in reduced.devices] == ["r1"]
        assert report.removed == [("m1", "dummy transistor")]

    def test_off_gate_at_rail_removed(self):
        deck = "m1 a gnd! gnd! gnd! nmos\nr1 a b 1k\n.end\n"
        reduced, _ = _prep(deck)
        assert [d.name for d in reduced.devices] == ["r1"]

    def test_pmos_off_gate_at_vdd_removed(self):
        deck = "m1 a vdd! vdd! vdd! pmos\nr1 a b 1k\n.end\n"
        reduced, _ = _prep(deck)
        assert [d.name for d in reduced.devices] == ["r1"]

    def test_active_transistor_kept(self):
        deck = "m1 out in gnd! gnd! nmos\n.end\n"
        reduced, _ = _prep(deck)
        assert len(reduced.devices) == 1


class TestDecaps:
    def test_rail_to_rail_cap_removed(self):
        deck = "c1 vdd! gnd! 10p\nc2 out gnd! 1p\nm1 out in gnd! gnd! nmos\n.end\n"
        reduced, report = _prep(deck)
        names = {d.name for d in reduced.devices}
        assert "c1" not in names
        assert "c2" in names
        assert ("c1", "decoupling capacitor") in report.removed

    def test_signal_cap_kept(self):
        deck = "c1 a b 1p\n.end\n"
        reduced, _ = _prep(deck)
        assert len(reduced.devices) == 1


class TestParallelPassives:
    def test_parallel_caps_sum(self):
        deck = "c1 a b 1p\nc2 a b 2p\n.end\n"
        reduced, _ = _prep(deck)
        assert len(reduced.devices) == 1
        assert reduced.devices[0].value == pytest.approx(3e-12)

    def test_parallel_resistors_combine(self):
        deck = "r1 a b 2k\nr2 a b 2k\n.end\n"
        reduced, _ = _prep(deck)
        assert reduced.devices[0].value == pytest.approx(1e3)

    def test_reversed_pins_still_parallel(self):
        deck = "c1 a b 1p\nc2 b a 2p\n.end\n"
        reduced, _ = _prep(deck)
        assert len(reduced.devices) == 1

    def test_different_nets_not_merged(self):
        deck = "c1 a b 1p\nc2 a c 2p\n.end\n"
        reduced, _ = _prep(deck)
        assert len(reduced.devices) == 2


class TestReport:
    def test_every_survivor_in_absorbed(self):
        deck = "r1 a b 1k\nc1 a b 1p\n.end\n"
        reduced, report = _prep(deck)
        for dev in reduced.devices:
            assert dev.name in report.absorbed

    def test_input_not_mutated(self):
        flat = flatten(parse_netlist("c1 a b 1p\nc2 a b 2p\n.end\n"))
        n_before = len(flat.devices)
        preprocess(flat)
        assert len(flat.devices) == n_before
