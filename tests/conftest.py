"""Shared fixtures: canonical decks, graphs, the example-netlist
corpus, and a session-scoped quick-trained annotator (so expensive
training happens once)."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.graph.bipartite import CircuitGraph
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist

#: The shipped example decks, shared by every sweep that used to glob
#: this directory itself (spice/core/primitives test modules).
EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples" / "netlists"
EXAMPLE_DECK_PATHS = tuple(sorted(EXAMPLES_DIR.glob("*.sp")))


def example_deck_id(path: Path) -> str:
    return path.stem


@pytest.fixture(params=EXAMPLE_DECK_PATHS, ids=example_deck_id)
def example_deck_path(request) -> Path:
    """One shipped example deck path (parametrized over all of them)."""
    return request.param


@pytest.fixture(params=["strict", "lenient"])
def parse_mode(request) -> str:
    """Both parser modes — combine with ``example_deck_path`` for the
    deck × mode product."""
    return request.param


@pytest.fixture(autouse=True)
def _fresh_worker_pools():
    """Tear down warm executor pools after every test.

    Pool reuse is great in production but hazardous across tests: a
    forked worker snapshots the parent's (possibly monkeypatched)
    module state at pool creation, so a cached pool could leak one
    test's patches into the next.  Within a single test, reuse still
    happens — that's what the pool-registry tests exercise.
    """
    yield
    from repro.runtime.parallel import shutdown_pools

    shutdown_pools()


@pytest.fixture(scope="session", autouse=True)
def _isolated_model_cache(tmp_path_factory):
    """Point the trained-model cache at a session tmp dir.

    Keeps the suite hermetic (never touches ``~/.cache/gana``) while
    still exercising the cache code paths: repeated pretrains within
    one session hit the session-local cache.
    """
    cache_dir = tmp_path_factory.mktemp("gana-model-cache")
    previous = os.environ.get("GANA_CACHE_DIR")
    os.environ["GANA_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("GANA_CACHE_DIR", None)
    else:
        os.environ["GANA_CACHE_DIR"] = previous

#: The Fig. 3 differential OTA (simplified, no body terminals shown in
#: the paper; bodies default to the rails here).
DIFF_OTA_DECK = """
* differential ota (paper fig. 3)
m0 n1 n1 gnd! gnd! nmos w=1u l=100n
m1 id n1 gnd! gnd! nmos w=1u l=100n
m2 voutn vinp id gnd! nmos w=2u l=100n
m3 voutp vinn id gnd! nmos w=2u l=100n
m4 voutn vbp vdd! vdd! pmos w=4u l=100n
m5 voutp vbp vdd! vdd! pmos w=4u l=100n
.end
"""

#: The Fig. 2 two-transistor NMOS current mirror.
CURRENT_MIRROR_DECK = """
* nmos current mirror (paper fig. 2)
m0 d1 d1 s gnd! nmos w=1u l=100n
m1 d2 d1 s gnd! nmos w=1u l=100n
.end
"""

HIERARCHICAL_DECK = """
* hierarchical deck exercising flattening
.global vdd! gnd!
.subckt inverter in out
mn out in gnd! gnd! nmos w=1u l=100n
mp out in vdd! vdd! pmos w=2u l=100n
.ends
.subckt buffer in out
x1 in mid inverter
x2 mid out inverter
.ends
xbuf a b buffer
rload b gnd! 10k
.end
"""


@pytest.fixture()
def diff_ota_graph() -> CircuitGraph:
    return CircuitGraph.from_circuit(flatten(parse_netlist(DIFF_OTA_DECK)))


@pytest.fixture()
def current_mirror_graph() -> CircuitGraph:
    return CircuitGraph.from_circuit(flatten(parse_netlist(CURRENT_MIRROR_DECK)))


#: Stable names for the canonical graph cases — safe to use in
#: ``@pytest.mark.parametrize`` at collect time (building the graphs
#: themselves is deferred to the session fixture below).
CANONICAL_GRAPH_NAMES = (
    "diff_ota",
    "current_mirror",
    "hierarchical",
    "switched_cap_filter",
    "sample_and_hold",
    "phased_array_2ch",
)


def build_canonical_graphs() -> dict[str, CircuitGraph]:
    """The canonical CircuitGraph menagerie: the three paper decks plus
    the three generated system benchmarks."""
    from repro.datasets.systems import (
        phased_array,
        sample_and_hold,
        switched_cap_filter,
    )

    return {
        "diff_ota": CircuitGraph.from_circuit(
            flatten(parse_netlist(DIFF_OTA_DECK))
        ),
        "current_mirror": CircuitGraph.from_circuit(
            flatten(parse_netlist(CURRENT_MIRROR_DECK))
        ),
        "hierarchical": CircuitGraph.from_circuit(
            flatten(parse_netlist(HIERARCHICAL_DECK))
        ),
        "switched_cap_filter": CircuitGraph.from_circuit(
            switched_cap_filter().circuit
        ),
        "sample_and_hold": CircuitGraph.from_circuit(
            sample_and_hold().circuit
        ),
        "phased_array_2ch": CircuitGraph.from_circuit(
            phased_array(n_channels=2).circuit
        ),
    }


@pytest.fixture(scope="session")
def canonical_graphs() -> dict[str, CircuitGraph]:
    return build_canonical_graphs()


@pytest.fixture(scope="session")
def quick_ota_annotator():
    """A small but usable OTA annotator, trained once per session."""
    from repro.datasets.synth import pretrain_annotator

    return pretrain_annotator("ota", quick=True, train_size=150, seed=0)


@pytest.fixture(scope="session")
def quick_rf_annotator():
    """A small but usable RF annotator, trained once per session."""
    from repro.datasets.synth import pretrain_annotator

    return pretrain_annotator("rf", quick=True, train_size=150, seed=0)
