"""Shared fixtures: canonical decks, graphs, and a session-scoped
quick-trained annotator (so expensive training happens once)."""

from __future__ import annotations

import os

import pytest

from repro.graph.bipartite import CircuitGraph
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist


@pytest.fixture(autouse=True)
def _fresh_worker_pools():
    """Tear down warm executor pools after every test.

    Pool reuse is great in production but hazardous across tests: a
    forked worker snapshots the parent's (possibly monkeypatched)
    module state at pool creation, so a cached pool could leak one
    test's patches into the next.  Within a single test, reuse still
    happens — that's what the pool-registry tests exercise.
    """
    yield
    from repro.runtime.parallel import shutdown_pools

    shutdown_pools()


@pytest.fixture(scope="session", autouse=True)
def _isolated_model_cache(tmp_path_factory):
    """Point the trained-model cache at a session tmp dir.

    Keeps the suite hermetic (never touches ``~/.cache/gana``) while
    still exercising the cache code paths: repeated pretrains within
    one session hit the session-local cache.
    """
    cache_dir = tmp_path_factory.mktemp("gana-model-cache")
    previous = os.environ.get("GANA_CACHE_DIR")
    os.environ["GANA_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("GANA_CACHE_DIR", None)
    else:
        os.environ["GANA_CACHE_DIR"] = previous

#: The Fig. 3 differential OTA (simplified, no body terminals shown in
#: the paper; bodies default to the rails here).
DIFF_OTA_DECK = """
* differential ota (paper fig. 3)
m0 n1 n1 gnd! gnd! nmos w=1u l=100n
m1 id n1 gnd! gnd! nmos w=1u l=100n
m2 voutn vinp id gnd! nmos w=2u l=100n
m3 voutp vinn id gnd! nmos w=2u l=100n
m4 voutn vbp vdd! vdd! pmos w=4u l=100n
m5 voutp vbp vdd! vdd! pmos w=4u l=100n
.end
"""

#: The Fig. 2 two-transistor NMOS current mirror.
CURRENT_MIRROR_DECK = """
* nmos current mirror (paper fig. 2)
m0 d1 d1 s gnd! nmos w=1u l=100n
m1 d2 d1 s gnd! nmos w=1u l=100n
.end
"""

HIERARCHICAL_DECK = """
* hierarchical deck exercising flattening
.global vdd! gnd!
.subckt inverter in out
mn out in gnd! gnd! nmos w=1u l=100n
mp out in vdd! vdd! pmos w=2u l=100n
.ends
.subckt buffer in out
x1 in mid inverter
x2 mid out inverter
.ends
xbuf a b buffer
rload b gnd! 10k
.end
"""


@pytest.fixture()
def diff_ota_graph() -> CircuitGraph:
    return CircuitGraph.from_circuit(flatten(parse_netlist(DIFF_OTA_DECK)))


@pytest.fixture()
def current_mirror_graph() -> CircuitGraph:
    return CircuitGraph.from_circuit(flatten(parse_netlist(CURRENT_MIRROR_DECK)))


@pytest.fixture(scope="session")
def quick_ota_annotator():
    """A small but usable OTA annotator, trained once per session."""
    from repro.datasets.synth import pretrain_annotator

    return pretrain_annotator("ota", quick=True, train_size=150, seed=0)


@pytest.fixture(scope="session")
def quick_rf_annotator():
    """A small but usable RF annotator, trained once per session."""
    from repro.datasets.synth import pretrain_annotator

    return pretrain_annotator("rf", quick=True, train_size=150, seed=0)
