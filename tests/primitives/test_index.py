"""Property tests: the signature-indexed matcher is exact.

The indexed hot path (template profiles, shared target context,
symmetry breaking, per-depth search plans — ``primitives/index.py``)
must return the *exact same* matches as the naive full-setup VF2 path
for every template of the library on every example netlist.  These
tests assert list equality, not set equality: downstream overlap
resolution claims devices in match order, so order preservation is
part of the bit-identical-annotations contract.
"""

from __future__ import annotations

import pytest

from repro.graph.ccc import channel_connected_components
from repro.primitives.index import (
    TargetContext,
    canonical_mapping,
    template_profile,
)
from repro.primitives.library import default_library
from repro.primitives.matcher import (
    annotate_components,
    annotate_primitives,
    find_primitive_matches,
)
from tests.conftest import CANONICAL_GRAPH_NAMES, build_canonical_graphs

LIBRARY = default_library()

# The shared canonical menagerie (tests/conftest.py) — built once at
# module import; the session fixture is not usable at collect time.
GRAPHS = build_canonical_graphs()


@pytest.mark.parametrize("graph_name", sorted(CANONICAL_GRAPH_NAMES))
class TestIndexedEqualsNaive:
    def test_every_template_matches_identically(self, graph_name):
        graph = GRAPHS[graph_name]
        context = TargetContext.build(graph)
        for template in LIBRARY.templates:
            naive = find_primitive_matches(template, graph, indexed=False)
            indexed = find_primitive_matches(
                template, graph, context=context, indexed=True
            )
            assert indexed == naive, template.name

    def test_annotation_identical(self, graph_name):
        graph = GRAPHS[graph_name]
        naive = annotate_primitives(graph, LIBRARY, indexed=False)
        indexed = annotate_primitives(graph, LIBRARY, indexed=True)
        assert indexed.matches == naive.matches
        assert indexed.unclaimed == naive.unclaimed

    def test_overlapping_annotation_identical(self, graph_name):
        graph = GRAPHS[graph_name]
        naive = annotate_primitives(
            graph, LIBRARY, allow_overlap=True, indexed=False
        )
        indexed = annotate_primitives(
            graph, LIBRARY, allow_overlap=True, indexed=True
        )
        assert indexed.matches == naive.matches


class TestComponentScopedAnnotation:
    def test_matches_per_component_subgraph(self):
        graph = GRAPHS["phased_array_2ch"]
        partition = channel_connected_components(graph)
        scoped = annotate_components(graph, partition, LIBRARY)
        assert set(scoped) == set(range(partition.n_components))
        for cid, members in enumerate(partition.components):
            subgraph = graph.subgraph_of_elements(members)
            direct = annotate_primitives(subgraph, LIBRARY, indexed=False)
            assert scoped[cid].matches == direct.matches

    def test_every_match_stays_inside_its_component(self):
        graph = GRAPHS["switched_cap_filter"]
        partition = channel_connected_components(graph)
        scoped = annotate_components(graph, partition, LIBRARY)
        for cid, result in scoped.items():
            member_names = {
                graph.elements[v].name for v in partition.components[cid]
            }
            for match in result.matches:
                assert match.elements <= member_names


class TestTemplateProfiles:
    def test_memoized_per_template_object(self):
        template = LIBRARY.templates[0]
        assert template_profile(template) is template_profile(template)

    def test_profile_invariants(self):
        for template in LIBRARY.templates:
            profile = template_profile(template)
            graph = template.graph
            assert profile.n_elements == graph.n_elements
            assert len(profile.order) == graph.n_vertices
            assert sorted(profile.order) == list(range(graph.n_vertices))
            assert len(profile.depth_plan) == graph.n_vertices
            assert profile.element_names == tuple(
                el.name for el in graph.elements
            )
            # Automorphisms are bijections fixing element/net split.
            for sigma in profile.automorphisms:
                assert sorted(sigma) == list(range(graph.n_vertices))
                assert all(
                    (v < graph.n_elements) == (sigma[v] < graph.n_elements)
                    for v in range(graph.n_vertices)
                )

    def test_differential_pair_has_arm_swap_symmetry(self):
        dp = LIBRARY.get("DP-N")
        assert template_profile(dp).automorphisms


class TestCanonicalMapping:
    def test_identity_when_no_automorphisms(self):
        mapping = {0: 5, 1: 3, 2: 9}
        assert canonical_mapping(mapping, ()) == mapping

    def test_picks_lex_minimal_orbit_member(self):
        # One automorphism swapping pattern vertices 0 and 1.
        sigma = (1, 0, 2)
        mapping = {0: 7, 1: 4, 2: 2}
        canonical = canonical_mapping(mapping, (sigma,))
        assert canonical == {0: 4, 1: 7, 2: 2}
        # Canonicalizing is idempotent across the whole orbit.
        assert canonical_mapping(canonical, (sigma,)) == canonical
