"""VF2 correctness, including a cross-check against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bipartite import CircuitGraph
from repro.primitives.isomorphism import (
    PatternGraph,
    VF2Matcher,
    find_subgraph_isomorphisms,
)
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist
from tests.conftest import CURRENT_MIRROR_DECK, DIFF_OTA_DECK

pytestmark = pytest.mark.property


def _graph(deck: str) -> CircuitGraph:
    return CircuitGraph.from_circuit(flatten(parse_netlist(deck)))


def _pattern(deck: str, ports: tuple[str, ...]) -> PatternGraph:
    flat = flatten(parse_netlist(deck))
    flat.ports = ports
    return PatternGraph.from_graph(CircuitGraph.from_circuit(flat))


CM_PATTERN = _pattern(CURRENT_MIRROR_DECK, ports=("d1", "d2", "s"))


class TestBasicMatching:
    def test_mirror_matches_itself(self):
        target = _graph(CURRENT_MIRROR_DECK)
        matches = find_subgraph_isomorphisms(CM_PATTERN, target)
        assert len(matches) == 1  # diode/output devices are NOT symmetric

    def test_mirror_in_fig3_ota(self, diff_ota_graph):
        """Fig. 3's blue-edge subgraph: the CM inside the OTA."""
        matches = find_subgraph_isomorphisms(CM_PATTERN, diff_ota_graph)
        assert len(matches) == 1
        mapping = matches[0].as_dict
        pattern_graph = CM_PATTERN.graph
        matched_devices = {
            diff_ota_graph.elements[mapping[pv]].name
            for pv in range(pattern_graph.n_elements)
        }
        assert matched_devices == {"m0", "m1"}

    def test_no_match_in_wrong_polarity(self):
        pmos_mirror = """
m0 d1 d1 s vdd! pmos
m1 d2 d1 s vdd! pmos
.end
"""
        target = _graph(pmos_mirror)
        assert not find_subgraph_isomorphisms(CM_PATTERN, target)

    def test_limit_stops_early(self, diff_ota_graph):
        # A single plain transistor pattern has many matches; limit=2.
        single = _pattern("m1 d g s gnd! nmos\n.end\n", ports=("d", "g", "s"))
        matches = find_subgraph_isomorphisms(single, diff_ota_graph, limit=2)
        assert len(matches) == 2

    def test_exists_short_circuit(self, diff_ota_graph):
        matcher = VF2Matcher(CM_PATTERN, diff_ota_graph)
        assert matcher.exists()


class TestSemanticFeasibility:
    def test_edge_labels_respected(self):
        """A diode-connected pattern must not match a plain transistor."""
        diode = _pattern("m1 d d s gnd! nmos\n.end\n", ports=("d", "s"))
        plain_target = _graph("m1 d g s gnd! nmos\n.end\n")
        assert not find_subgraph_isomorphisms(diode, plain_target)

    def test_internal_net_degree_exact(self):
        """A pattern's internal net must not have extra fanout."""
        # Series RC with internal midpoint.
        rc = _pattern("r1 a x 1k\nc1 x b 1p\n.end\n", ports=("a", "b"))
        clean = _graph("r1 in mid 1k\nc1 mid out 1p\n.end\n")
        assert len(find_subgraph_isomorphisms(rc, clean)) == 1
        tapped = _graph("r1 in mid 1k\nc1 mid out 1p\nr2 mid tap 1k\n.end\n")
        assert not find_subgraph_isomorphisms(rc, tapped)

    def test_boundary_net_fanout_allowed(self):
        rc = _pattern("r1 a x 1k\nc1 x b 1p\n.end\n", ports=("a", "b"))
        fanout = _graph(
            "r1 in mid 1k\nc1 mid out 1p\nr2 in other 1k\nl3 out more 1n\n.end\n"
        )
        assert len(find_subgraph_isomorphisms(rc, fanout)) == 1

    def test_element_kind_must_match(self):
        rc = _pattern("r1 a x 1k\nc1 x b 1p\n.end\n", ports=("a", "b"))
        ll = _graph("l1 in mid 1n\nc1 mid out 1p\n.end\n")
        assert not find_subgraph_isomorphisms(rc, ll)

    def test_element_degree_exact(self):
        """A transistor with merged terminals has fewer edges; a plain
        3-edge pattern transistor must not match it."""
        plain = _pattern("m1 d g s gnd! nmos\n.end\n", ports=("d", "g", "s"))
        diode_target = _graph("m1 d d s gnd! nmos\n.end\n")
        assert not find_subgraph_isomorphisms(plain, diode_target)


class TestAgainstNetworkx:
    """Cross-validate match *counts* against networkx's VF2 on the same
    labeled graphs (boundary nets modeled by dropping the degree rule)."""

    def _to_nx(self, graph: CircuitGraph) -> nx.Graph:
        g = nx.Graph()
        for i, dev in enumerate(graph.elements):
            g.add_node(i, kind=dev.kind.value)
        for j in range(graph.n_nets):
            g.add_node(graph.n_elements + j, kind="net")
        for edge in graph.edges:
            g.add_edge(
                edge.element, graph.n_elements + edge.net, label=edge.label
            )
        return g

    def _nx_count(self, pattern: PatternGraph, target: CircuitGraph) -> int:
        """Count matches with networkx, applying the same internal-net
        degree rule as a post-filter, deduplicated like ours isn't —
        networkx enumerates all vertex mappings, so compare directly."""
        gp = self._to_nx(pattern.graph)
        gt = self._to_nx(target)
        matcher = nx.algorithms.isomorphism.GraphMatcher(
            gt,
            gp,
            node_match=lambda a, b: a["kind"] == b["kind"],
            edge_match=lambda a, b: a["label"] == b["label"],
        )
        count = 0
        n_el = pattern.graph.n_elements
        for mapping in matcher.subgraph_monomorphisms_iter():
            inverse = {pv: tv for tv, pv in mapping.items()}
            ok = True
            for pv in range(pattern.graph.n_vertices):
                p_deg = gp.degree[pv]
                t_deg = gt.degree[inverse[pv]]
                internal = pv >= n_el and (
                    (pv - n_el) not in pattern.boundary_nets
                )
                if pv < n_el or internal:
                    if p_deg != t_deg:
                        ok = False
                        break
            if ok:
                count += 1
        return count

    @pytest.mark.parametrize(
        "pattern_deck, ports, target_deck",
        [
            (CURRENT_MIRROR_DECK, ("d1", "d2", "s"), DIFF_OTA_DECK),
            ("m1 d g s gnd! nmos\n.end\n", ("d", "g", "s"), DIFF_OTA_DECK),
            (
                "m1 d1 inp t gnd! nmos\nm2 d2 inn t gnd! nmos\n.end\n",
                ("d1", "d2", "inp", "inn", "t"),
                DIFF_OTA_DECK,
            ),
            ("r1 a x 1k\nc1 x b 1p\n.end\n", ("a", "b"),
             "r1 in mid 1k\nc1 mid out 1p\nc2 in out 2p\n.end\n"),
        ],
    )
    def test_counts_agree(self, pattern_deck, ports, target_deck):
        pattern = _pattern(pattern_deck, ports)
        target = _graph(target_deck)
        ours = find_subgraph_isomorphisms(pattern, target)
        assert len(ours) == self._nx_count(pattern, target)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_counts_agree_random_targets(self, seed):
        """Planted random targets: chains of transistors + passives."""
        import numpy as np

        rng = np.random.default_rng(seed)
        lines = []
        nets = [f"n{i}" for i in range(6)]
        for i in range(int(rng.integers(2, 7))):
            d, g, s = rng.choice(nets, size=3)
            model = rng.choice(["nmos", "pmos"])
            if d == s:
                continue
            lines.append(f"m{i} {d} {g} {s} gnd! {model}")
        for i in range(int(rng.integers(0, 4))):
            a, b = rng.choice(nets, size=2, replace=False)
            lines.append(f"r{i} {a} {b} 1k")
        deck = "\n".join(lines) + "\n.end\n"
        target = _graph(deck)
        pattern = _pattern(
            "m1 d g s gnd! nmos\n.end\n", ports=("d", "g", "s")
        )
        ours = find_subgraph_isomorphisms(pattern, target)
        assert len(ours) == self._nx_count(pattern, target)
