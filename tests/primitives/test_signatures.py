"""SubGemini signature prefilter: soundness and pruning power."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bipartite import CircuitGraph
from repro.primitives.isomorphism import PatternGraph, VF2Matcher
from repro.primitives.library import default_library
from repro.primitives.signatures import (
    build_filter,
    signature_covers,
    vertex_signatures,
)
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist
from tests.conftest import CURRENT_MIRROR_DECK, DIFF_OTA_DECK

pytestmark = pytest.mark.property


def _graph(deck: str) -> CircuitGraph:
    return CircuitGraph.from_circuit(flatten(parse_netlist(deck)))


def _pattern(deck: str, ports: tuple[str, ...]) -> PatternGraph:
    flat = flatten(parse_netlist(deck))
    flat.ports = ports
    return PatternGraph.from_graph(CircuitGraph.from_circuit(flat))


class TestSignatures:
    def test_signature_counts_incident_edges(self):
        graph = _graph(CURRENT_MIRROR_DECK)
        sigs = vertex_signatures(graph)
        m0 = graph.element_vertex("m0")
        # Diode: one combined 101 edge + one source edge.
        assert sum(sigs[m0].values()) == 2

    def test_covers_exact(self):
        from collections import Counter

        a = Counter({(4, "net"): 1})
        assert signature_covers(a, Counter(a), exact=True)
        assert not signature_covers(a, a + Counter({(2, "net"): 1}), exact=True)

    def test_covers_subset(self):
        from collections import Counter

        small = Counter({(4, "net"): 1})
        big = Counter({(4, "net"): 2, (1, "net"): 1})
        assert signature_covers(small, big, exact=False)
        assert not signature_covers(big, small, exact=False)


class TestFilterSoundness:
    def test_mirror_match_survives(self):
        pattern = _pattern(CURRENT_MIRROR_DECK, ("d1", "d2", "s"))
        target = _graph(DIFF_OTA_DECK)
        with_filter = VF2Matcher(pattern, target, use_prefilter=True).find_all()
        without = VF2Matcher(pattern, target, use_prefilter=False).find_all()
        assert sorted(m.mapping for m in with_filter) == sorted(
            m.mapping for m in without
        )

    def test_infeasible_detected_without_search(self):
        pattern = _pattern(
            "l1 a b 1n\nc1 a b 1p\n.end\n", ports=("a", "b")
        )  # LC tank
        target = _graph(CURRENT_MIRROR_DECK)  # no inductors at all
        matcher = VF2Matcher(pattern, target, use_prefilter=True)
        assert not matcher.prefilter.is_feasible
        assert matcher.find_all() == []

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_filtered_matches_equal_unfiltered_random(self, seed):
        """Property: the prefilter never changes the match set."""
        rng = np.random.default_rng(seed)
        nets = [f"n{i}" for i in range(6)]
        lines = []
        for i in range(int(rng.integers(2, 7))):
            d, g, s = rng.choice(nets, size=3)
            model = rng.choice(["nmos", "pmos"])
            if d == s:
                continue
            lines.append(f"m{i} {d} {g} {s} gnd! {model}")
        for i in range(int(rng.integers(0, 3))):
            a, b = rng.choice(nets, size=2, replace=False)
            lines.append(f"r{i} {a} {b} 1k")
        deck = "\n".join(lines) + "\n.end\n"
        target = _graph(deck)
        for template in (
            _pattern(CURRENT_MIRROR_DECK, ("d1", "d2", "s")),
            _pattern("m1 d g s gnd! nmos\n.end\n", ("d", "g", "s")),
            _pattern("r1 a x 1k\nc1 x b 1p\n.end\n", ("a", "b")),
        ):
            with_filter = VF2Matcher(template, target, True).find_all()
            without = VF2Matcher(template, target, False).find_all()
            assert sorted(m.mapping for m in with_filter) == sorted(
                m.mapping for m in without
            )

    def test_whole_library_identical_results(self):
        """Every library template finds the same matches either way on
        a realistic circuit."""
        from repro.datasets.ota import OtaSpec, generate_ota

        lc = generate_ota(OtaSpec(topology="telescopic"))
        target = CircuitGraph.from_circuit(lc.circuit)
        for template in default_library():
            with_filter = VF2Matcher(template.pattern, target, True).find_all()
            without = VF2Matcher(template.pattern, target, False).find_all()
            assert sorted(m.mapping for m in with_filter) == sorted(
                m.mapping for m in without
            ), template.name


class TestFilterPruning:
    def test_allowed_sets_respect_kind(self):
        pattern = _pattern(CURRENT_MIRROR_DECK, ("d1", "d2", "s"))
        target = _graph(DIFF_OTA_DECK)
        compat = build_filter(pattern, target)
        n_el_p = pattern.graph.n_elements
        for pv in range(pattern.graph.n_vertices):
            for tv in compat.allowed[pv]:
                assert (pv < n_el_p) == (tv < target.n_elements)

    def test_prunes_more_than_kind_alone(self):
        # The diode pattern vertex must not be allowed on plain devices.
        pattern = _pattern(CURRENT_MIRROR_DECK, ("d1", "d2", "s"))
        target = _graph(DIFF_OTA_DECK)
        compat = build_filter(pattern, target)
        m0 = pattern.graph.element_index["m0"]  # the diode device
        allowed_names = {
            target.elements[tv].name for tv in compat.allowed[m0]
        }
        assert allowed_names == {"m0"}  # only the OTA's diode qualifies
