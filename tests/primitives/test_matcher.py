"""Primitive annotation: matching, dedup, overlap resolution."""

import pytest

from repro.core.constraints import ConstraintKind
from repro.graph.bipartite import CircuitGraph
from repro.primitives.library import default_library, extended_library
from repro.primitives.matcher import annotate_primitives, find_primitive_matches
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist

LIB = default_library()


def _graph(deck: str) -> CircuitGraph:
    return CircuitGraph.from_circuit(flatten(parse_netlist(deck)))


class TestFindMatches:
    def test_dp_automorphism_deduplicated(self):
        deck = """
m1 d1 inp t gnd! nmos
m2 d2 inn t gnd! nmos
m3 t vb gnd! gnd! nmos
.end
"""
        matches = find_primitive_matches(LIB.get("DP-N"), _graph(deck))
        assert len(matches) == 1  # arm swap is the same match

    def test_match_carries_renamed_constraints(self):
        deck = """
m1 d1 inp t gnd! nmos
m2 d2 inn t gnd! nmos
m3 t vb gnd! gnd! nmos
.end
"""
        (match,) = find_primitive_matches(LIB.get("DP-N"), _graph(deck))
        sym = [c for c in match.constraints if c.kind is ConstraintKind.SYMMETRY]
        assert sym
        assert set(sym[0].members) == {"m1", "m2"}
        assert sym[0].source == "DP-N"

    def test_port_predicate_filters(self):
        # CM-N(2) requires the common source on a power net.
        floating = """
m1 ref ref srcnet gnd! nmos
m2 out ref srcnet gnd! nmos
.end
"""
        assert not find_primitive_matches(LIB.get("CM-N(2)"), _graph(floating))
        grounded = """
m1 ref ref gnd! gnd! nmos
m2 out ref gnd! gnd! nmos
.end
"""
        assert len(find_primitive_matches(LIB.get("CM-N(2)"), _graph(grounded))) == 1

    def test_element_map_names(self):
        deck = """
m1 ref ref gnd! gnd! nmos
m2 out ref gnd! gnd! nmos
.end
"""
        (match,) = find_primitive_matches(LIB.get("CM-N(2)"), _graph(deck))
        assert match.elements == {"m1", "m2"}
        assert match.net_dict["ref"] == "ref"
        assert match.net_dict["s"] == "gnd!"

    def test_cross_coupled_pair(self):
        deck = """
m1 d1 d2 t gnd! nmos
m2 d2 d1 t gnd! nmos
m3 t vb gnd! gnd! nmos
.end
"""
        matches = find_primitive_matches(LIB.get("CC-N"), _graph(deck))
        assert len(matches) == 1

    def test_lc_tank(self):
        deck = "l1 a b 1n\nc1 a b 1p\n.end\n"
        matches = find_primitive_matches(LIB.get("LC-TANK"), _graph(deck))
        assert len(matches) == 1


class TestOverlapResolution:
    CASCODE_DECK = """
m1 ref ref nc gnd! nmos
m2 nc nc gnd! gnd! nmos
m3 out ref no gnd! nmos
m4 no nc gnd! gnd! nmos
.end
"""

    def test_cascode_mirror_wins_over_parts(self):
        result = annotate_primitives(_graph(self.CASCODE_DECK), LIB)
        primitives = [m.primitive for m in result.matches]
        assert "CM-N(casc)" in primitives
        assert len(result.claimed) == 4
        assert not result.unclaimed

    def test_allow_overlap_reports_everything(self):
        result = annotate_primitives(
            _graph(self.CASCODE_DECK), LIB, allow_overlap=True
        )
        assert len(result.matches) > 1

    def test_unclaimed_devices_listed(self):
        deck = "m1 out in gnd! gnd! nmos\nm2 x y z gnd! nmos\nr1 z q 1k\n.end\n"
        result = annotate_primitives(_graph(deck), LIB)
        claimed_plus_unclaimed = result.claimed | set(result.unclaimed)
        assert claimed_plus_unclaimed == {"m1", "m2", "r1"}

    def test_by_primitive_grouping(self):
        deck = """
m1 r1n r1n gnd! gnd! nmos
m2 o1 r1n gnd! gnd! nmos
m3 r2n r2n vdd! vdd! pmos
m4 o2 r2n vdd! vdd! pmos
.end
"""
        result = annotate_primitives(_graph(deck), LIB)
        grouped = result.by_primitive()
        assert len(grouped.get("CM-N(2)", [])) == 1
        assert len(grouped.get("CM-P(2)", [])) == 1

    def test_constraints_aggregated(self):
        deck = """
m1 d1 inp t gnd! nmos
m2 d2 inn t gnd! nmos
m3 t vb gnd! gnd! nmos
.end
"""
        result = annotate_primitives(_graph(deck), LIB)
        kinds = {c.kind for c in result.constraints()}
        assert ConstraintKind.SYMMETRY in kinds


class TestInvBufDistinction:
    def test_inverter_matches_inv_not_buf(self):
        lib = extended_library()
        deck = """
m1 out in gnd! gnd! nmos
m2 out in vdd! vdd! pmos
.end
"""
        result = annotate_primitives(_graph(deck), lib)
        assert [m.primitive for m in result.matches] == ["INV"]

    def test_source_follower_buffer_matches_buf_not_inv(self):
        lib = extended_library()
        deck = """
m1 vdd! in out gnd! nmos
m2 gnd! in out vdd! pmos
.end
"""
        result = annotate_primitives(_graph(deck), lib)
        assert [m.primitive for m in result.matches] == ["BUF"]


class TestOtaAnnotation:
    def test_fig3_ota_primitives(self, diff_ota_graph):
        result = annotate_primitives(diff_ota_graph, LIB)
        primitives = sorted(m.primitive for m in result.matches)
        # DP + per-device CS amps for the loads/tail/reference.
        assert "DP-N" in primitives
        assert not result.unclaimed
