"""The primitive template library (Sec. IV)."""

import pytest

from repro.core.constraints import ConstraintKind
from repro.exceptions import MatchError
from repro.primitives.library import (
    PrimitiveLibrary,
    PrimitiveTemplate,
    default_library,
    extended_library,
)


class TestDefaultLibrary:
    def test_exactly_21_primitives(self):
        assert len(default_library()) == 21

    def test_extended_adds_inv_buf(self):
        lib = extended_library()
        assert len(lib) == 23
        assert "INV" in lib.names()
        assert "BUF" in lib.names()

    def test_names_unique(self):
        names = default_library().names()
        assert len(names) == len(set(names))

    def test_expected_core_primitives_present(self):
        names = set(default_library().names())
        for expected in ("DP-N", "DP-P", "CM-N(2)", "CM-P(5)", "CC-N",
                         "CMF-SC", "CR-N", "VR-RD", "CC-RC", "LC-TANK"):
            assert expected in names

    def test_differential_pairs_carry_symmetry(self):
        lib = default_library()
        for name in ("DP-N", "DP-P", "CC-N", "CC-P"):
            kinds = {c.kind for c in lib.get(name).constraints}
            assert ConstraintKind.SYMMETRY in kinds

    def test_mirrors_carry_matching(self):
        lib = default_library()
        for name in ("CM-N(2)", "CM-P(2)", "CM-P(5)"):
            kinds = {c.kind for c in lib.get(name).constraints}
            assert ConstraintKind.MATCHING in kinds

    def test_big_mirrors_carry_common_centroid(self):
        lib = default_library()
        kinds = {c.kind for c in lib.get("CM-P(5)").constraints}
        assert ConstraintKind.COMMON_CENTROID in kinds

    def test_by_size_desc_ordering(self):
        sizes = [t.n_elements for t in default_library().by_size_desc()]
        assert sizes == sorted(sizes, reverse=True)

    def test_largest_is_cm_p5(self):
        assert default_library().by_size_desc()[0].name == "CM-P(5)"

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            default_library().get("NOPE")


class TestTemplateValidation:
    def test_requires_single_subckt(self):
        with pytest.raises(MatchError):
            PrimitiveTemplate(name="bad", spice="r1 a b 1k\n.end\n")

    def test_requires_flat_body(self):
        deck = """
.subckt outer a
x1 a inner
.ends
.subckt inner b
r1 b gnd! 1k
.ends
"""
        with pytest.raises(MatchError):
            PrimitiveTemplate(name="bad", spice=deck)

    def test_unknown_predicate_rejected(self):
        deck = ".subckt s a b\nr1 a b 1k\n.ends\n"
        with pytest.raises(MatchError):
            PrimitiveTemplate(name="bad", spice=deck, port_roles=(("a", "weird"),))

    def test_predicate_on_unknown_port_rejected(self):
        deck = ".subckt s a b\nr1 a b 1k\n.ends\n"
        with pytest.raises(MatchError):
            PrimitiveTemplate(name="bad", spice=deck, port_roles=(("z", "power"),))

    def test_port_net_ok(self):
        deck = ".subckt s a b\nr1 a b 1k\n.ends\n"
        template = PrimitiveTemplate(
            name="t", spice=deck, port_roles=(("a", "power"),)
        )
        assert template.port_net_ok("a", "vdd!")
        assert not template.port_net_ok("a", "sig")
        assert template.port_net_ok("b", "sig")  # unconstrained port


class TestUserExtension:
    def test_add_spice(self):
        lib = PrimitiveLibrary()
        template = lib.add_spice(
            "MY-DIV", ".subckt d t o b\nr1 t o 1k\nr2 o b 2k\n.ends\n"
        )
        assert template.n_elements == 2
        assert lib.get("MY-DIV") is template

    def test_duplicate_name_rejected(self):
        lib = PrimitiveLibrary()
        lib.add_spice("X", ".subckt x a b\nr1 a b 1k\n.ends\n")
        with pytest.raises(MatchError):
            lib.add_spice("X", ".subckt x a b\nc1 a b 1p\n.ends\n")

    def test_iteration(self):
        lib = default_library()
        assert len(list(lib)) == 21
