* fuzz deck seed=7
.global vdd! gnd!
.subckt cell0 sn0 sn1
m0 gnd! sn0 sn1 gnd! nmos
m1 sn0 sn2 sn0 gnd! nmos w=2u l=100n
.ends
m0 n0 n0 n1 vdd! pmos
m1 n1 n1 vdd! vdd! pmos
m2 n0 n0 n2 vdd! pmos
m3 n2 n1 vdd! vdd! pmos
x0 n0 n3 cell0
x1 n3 n1 cell0 m=2
x2 n1 n4 cell0
.end
