* fuzz deck seed=1
.global vdd! gnd!
m0 n0 n0 vdd! vdd! pmos
m1 n0 n0 vdd! vdd! pmos
m2 n1 n0 vdd! vdd! pmos
m3 n0 n0 vdd! vdd! pmos
m4 n0 n0 vdd! vdd! pmos
m5 n2 n2 gnd! gnd! nmos w=1u l=100n
r0 n3 n1 1k
l0 n0 n4 1n
rnoval n904 n905
xundef n902 n903 nosuchcell
.end
