* fuzz deck seed=3
.global vdd! gnd!
m0 n0 vb0 n1 gnd! nmos
m1 n2 n3 gnd! gnd! nmos w=2u l=100n
.end
