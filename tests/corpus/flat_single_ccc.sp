* fuzz deck seed=5
.global vdd! gnd!
m0 gnd! n0 n1 gnd! nmos
m1 gnd! n0 n1 vdd! pmos
l0 n2 n1 1n
c0 n2 n1 1p
.end
