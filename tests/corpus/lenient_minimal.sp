* fuzz deck seed=3
.global vdd! gnd!
m0 n0 vb0 n1 gnd! nmos
m1 n2 n3 gnd! gnd! nmos w=2u l=100n
c0 n5 n6 100f
c1 n1 n7 10p
qbogus a b c npn
xundef n902 n903 nosuchcell
.end
