* fuzz deck seed=0
.global vdd! gnd!
.subckt cell0 sn0 sn1
m0 sn0 sn1 sn1 vdd! pmos
m1 sn0 sn2 sn1 vdd! pmos
m2 sn3 vb0 sn4 gnd! nmos
.ends
m0 n0 n0 vdd! vdd! pmos
m1 n1 n0 vdd! vdd! pmos
m2 n0 n2 n3 gnd! nmos w=2u l=100n
x0 n3 n1 cell0
x1 n4 n5 cell0 m=2
x2 n3 n6 cell0
.end
