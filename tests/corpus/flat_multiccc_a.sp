* fuzz deck seed=0
.global vdd! gnd!
m0 n0 n1 n1 vdd! pmos
m1 n0 n2 n1 vdd! pmos
m2 n3 vb0 n4 gnd! nmos
c0 n0 n5 10p
m3 n5 n5 gnd! gnd! nmos w=2u l=100n
.end
