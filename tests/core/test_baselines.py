"""Baselines: template-library recognizer and Kipf first-order GCN."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines.kipf import KipfConv, kipf_model, renormalized_adjacency
from repro.baselines.template import (
    SubblockTemplate,
    TemplateRecognizer,
    subblock_template_library,
)
from repro.datasets.ota import OtaSpec, generate_ota
from repro.gcn.layers import SampleContext
from repro.gcn.samples import GraphSample
from repro.gcn.train import TrainConfig, train
from repro.graph.bipartite import CircuitGraph
from repro.graph.laplacian import normalized_laplacian, rescaled_laplacian
from repro.utils.rng import seeded_rng


class TestTemplateRecognizer:
    def test_recognizes_exact_training_topology(self):
        item = generate_ota(OtaSpec(topology="five_transistor", size_seed=1))
        recognizer = subblock_template_library([item])
        graph = CircuitGraph.from_circuit(item.circuit)
        accuracy = recognizer.accuracy(graph, item.truth(graph))
        assert accuracy == 1.0

    def test_same_topology_different_sizing_recognized(self):
        train_item = generate_ota(OtaSpec(topology="five_transistor", size_seed=1))
        test_item = generate_ota(OtaSpec(topology="five_transistor", size_seed=9))
        recognizer = subblock_template_library([train_item])
        graph = CircuitGraph.from_circuit(test_item.circuit)
        # Sizing differs but topology matches exactly → recognized.
        assert recognizer.accuracy(graph, test_item.truth(graph)) == 1.0

    def test_fails_on_unseen_variant(self):
        """The paper's motivating brittleness: an unenumerated topology
        goes unrecognized."""
        train_item = generate_ota(OtaSpec(topology="five_transistor", size_seed=1))
        test_item = generate_ota(OtaSpec(topology="folded_cascode", size_seed=2))
        recognizer = subblock_template_library([train_item])
        graph = CircuitGraph.from_circuit(test_item.circuit)
        accuracy = recognizer.accuracy(graph, test_item.truth(graph))
        assert accuracy < 0.5

    def test_library_deduplicates_signatures(self):
        items = [
            generate_ota(OtaSpec(topology="five_transistor", size_seed=s))
            for s in range(3)
        ]
        recognizer = subblock_template_library(items)
        # Same topology family: far fewer templates than 2×3 groups.
        assert len(recognizer.templates) <= 4

    def test_max_templates_respected(self):
        items = [
            generate_ota(OtaSpec(topology=t, size_seed=s))
            for t in ("five_transistor", "telescopic", "symmetric")
            for s in range(2)
        ]
        recognizer = subblock_template_library(items, max_templates=3)
        assert len(recognizer.templates) == 3

    def test_recognize_returns_device_map(self):
        item = generate_ota(OtaSpec(topology="five_transistor", size_seed=1))
        recognizer = subblock_template_library([item])
        graph = CircuitGraph.from_circuit(item.circuit)
        out = recognizer.recognize(graph)
        assert set(out.values()) <= {"ota", "bias"}


class TestKipf:
    def _ctx(self, n=8):
        rows = list(range(n)) * 2
        cols = [(i + 1) % n for i in range(n)] + [(i - 1) % n for i in range(n)]
        adj = sp.csr_matrix((np.ones(2 * n), (rows, cols)), shape=(n, n))
        lap = rescaled_laplacian(normalized_laplacian(adj))
        return SampleContext(laplacians=[lap])

    def test_renormalized_adjacency_rows_sum_to_one_for_regular(self):
        n = 6
        rows = list(range(n)) * 2
        cols = [(i + 1) % n for i in range(n)] + [(i - 1) % n for i in range(n)]
        adj = sp.csr_matrix((np.ones(2 * n), (rows, cols)), shape=(n, n))
        a_hat = renormalized_adjacency(adj)
        np.testing.assert_allclose(
            np.asarray(a_hat.sum(axis=1)).ravel(), 1.0, atol=1e-9
        )

    def test_kipfconv_shapes(self):
        layer = KipfConv(3, 5, seeded_rng(0))
        out = layer.forward(np.zeros((8, 3)), self._ctx(), training=True)
        assert out.shape == (8, 5)

    def test_kipfconv_gradients(self):
        layer = KipfConv(3, 4, seeded_rng(0))
        x = np.random.default_rng(0).normal(size=(8, 3))
        ctx = self._ctx()
        out = layer.forward(x, ctx, training=True)
        upstream = np.random.default_rng(1).normal(size=out.shape)
        layer.zero_grad()
        grad_x = layer.backward(upstream)

        def loss():
            return float((layer.forward(x, ctx, training=True) * upstream).sum())

        eps = 1e-6
        w = layer.params["weight"]
        g = layer.grads["weight"]
        idx = np.unravel_index(int(np.abs(g).argmax()), g.shape)
        orig = w[idx]
        w[idx] = orig + eps
        up = loss()
        w[idx] = orig - eps
        down = loss()
        w[idx] = orig
        assert g[idx] == pytest.approx((up - down) / (2 * eps), rel=1e-5)
        assert np.isfinite(grad_x).all()

    def test_kipf_model_trains_on_tiny_task(self):
        item = generate_ota(OtaSpec(topology="five_transistor"))
        graph = CircuitGraph.from_circuit(item.circuit)
        labels = {
            name: (0 if cls == "ota" else 1)
            for name, cls in item.device_labels.items()
        }
        sample = GraphSample.from_graph(graph, labels, levels=0)
        model = kipf_model(n_classes=2, hidden=(16, 16), fc_size=16, dropout=0.0)
        history = train(
            model, [sample],
            config=TrainConfig(epochs=200, batch_size=1, lr=1e-2, patience=0),
        )
        # First-order propagation converges more slowly than ChebConv
        # (which overfits this sample perfectly within 80 epochs) —
        # exactly the gap the baseline benchmark quantifies.
        assert history.train_accuracy[-1] >= 0.85
