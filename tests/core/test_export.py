"""Export formats: ALIGN-style constraints, hierarchy JSON, DOT."""

import json

import pytest

from repro.core.annotator import Annotation
from repro.core.constraints import Constraint, ConstraintKind, ConstraintSet
from repro.core.export import (
    constraint_record,
    constraints_json,
    graph_dot,
    hierarchy_dot,
    hierarchy_json,
)
from repro.core.hierarchy import HierarchyNode, NodeKind


def _tree():
    root = HierarchyNode(name="sys", kind=NodeKind.SYSTEM)
    block = root.add(
        HierarchyNode(name="ota0", kind=NodeKind.SUBBLOCK, block_class="ota")
    )
    block.add(
        HierarchyNode(
            name="dp", kind=NodeKind.PRIMITIVE, block_class="DP-N",
            devices=("m1", "m2"),
        )
    )
    return root


class TestConstraintRecords:
    def test_symmetry_pairs(self):
        record = constraint_record(
            Constraint(
                ConstraintKind.SYMMETRY, ("m1", "m2", "m3", "m4"), source="x"
            )
        )
        assert record["constraint"] == "SymmetricBlocks"
        assert record["pairs"] == [["m1", "m2"], ["m3", "m4"]]
        assert "self_symmetric" not in record

    def test_odd_symmetry_member_on_axis(self):
        record = constraint_record(
            Constraint(ConstraintKind.SYMMETRY, ("a", "b", "c"))
        )
        assert record["pairs"] == [["a", "b"]]
        assert record["self_symmetric"] == ["c"]

    def test_matching_instances(self):
        record = constraint_record(
            Constraint(ConstraintKind.MATCHING, ("m1", "m2"))
        )
        assert record["constraint"] == "GroupBlocks"
        assert record["instances"] == ["m1", "m2"]

    def test_attributes_included(self):
        record = constraint_record(
            Constraint(
                ConstraintKind.PROXIMITY, ("lna0",),
                attributes=(("reference", "antenna"),),
            )
        )
        assert record["reference"] == "antenna"

    def test_every_kind_mapped(self):
        for kind in ConstraintKind:
            record = constraint_record(Constraint(kind, ("a", "b")))
            assert record["constraint"]

    def test_json_round_trip(self):
        constraints = ConstraintSet()
        constraints.add(Constraint(ConstraintKind.SYMMETRY, ("a", "b")))
        constraints.add(Constraint(ConstraintKind.GUARD_RING, ("lna0",)))
        payload = json.loads(constraints_json(constraints))
        assert len(payload) == 2
        assert {r["constraint"] for r in payload} == {
            "SymmetricBlocks", "GuardRing",
        }


class TestHierarchyExport:
    def test_json(self):
        payload = json.loads(hierarchy_json(_tree()))
        assert payload["kind"] == "system"
        assert payload["children"][0]["name"] == "ota0"

    def test_dot_nodes_and_edges(self):
        dot = hierarchy_dot(_tree())
        assert dot.startswith("digraph")
        assert '"sys"' in dot
        assert "ota0" in dot
        assert "->" in dot

    def test_dot_escapes_quotes(self):
        root = HierarchyNode(name='we"ird', kind=NodeKind.SYSTEM)
        root.add(HierarchyNode(name="c", kind=NodeKind.ELEMENT))
        assert '\\"' in hierarchy_dot(root)


class TestGraphDot:
    def test_renders_annotated(self, diff_ota_graph):
        import numpy as np

        annotation = Annotation(
            graph=diff_ota_graph,
            class_names=("ota", "bias"),
            vertex_classes=np.zeros(diff_ota_graph.n_vertices, dtype=np.int64),
        )
        dot = graph_dot(diff_ota_graph, annotation)
        assert dot.startswith("graph circuit")
        assert "m0" in dot
        assert "lightgreen" in dot  # class-0 color
        assert "--" in dot

    def test_edge_labels_in_binary(self, current_mirror_graph):
        dot = graph_dot(current_mirror_graph)
        assert 'label="101"' in dot  # the diode edge
        assert 'label="010"' in dot  # a source edge

    def test_unannotated_is_white(self, diff_ota_graph):
        dot = graph_dot(diff_ota_graph)
        assert 'fillcolor="white"' in dot
