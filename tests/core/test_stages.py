"""Staged pipeline architecture (ISSUE 4).

Golden equivalence: the staged ``run()`` must produce a semantically
identical :class:`PipelineResult` to the legacy monolith
(``_run_monolith``) on every example netlist.  Plus: artifact
save/load round-trips, incremental recompute via the artifact cache,
early stop, resume, and the canonical stage-name enum.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import GanaPipeline
from repro.core.stages import (
    ARTIFACT_TYPES,
    STAGE_ORDER,
    TIMING_STAGES,
    AnnotatedDesign,
    Artifact,
    StageName,
    coerce_stage,
    content_fingerprint,
    fold_timings,
    load_artifacts,
    pipeline_result_fingerprint,
)
from repro.datasets.systems import phased_array, switched_cap_filter
from repro.exceptions import ArtifactError
from repro.runtime.cache import ArtifactCache
from tests.conftest import CURRENT_MIRROR_DECK, DIFF_OTA_DECK, HIERARCHICAL_DECK


@pytest.fixture(scope="module")
def ota_pipeline(quick_ota_annotator):
    return GanaPipeline(annotator=quick_ota_annotator)


@pytest.fixture(scope="module")
def rf_pipeline(quick_rf_annotator):
    return GanaPipeline(annotator=quick_rf_annotator)


#: (case id, deck factory) — every example netlist in the repo.  The
#: factory returns (netlist, run kwargs); decks are strings, systems
#: are flat circuits with port labels.
OTA_CASES = {
    "diff_ota": lambda: (DIFF_OTA_DECK, {}),
    "current_mirror": lambda: (CURRENT_MIRROR_DECK, {}),
    "hierarchical": lambda: (HIERARCHICAL_DECK, {}),
    "switched_cap_filter": lambda: (
        switched_cap_filter().circuit,
        {"port_labels": switched_cap_filter().port_labels},
    ),
}
RF_CASES = {
    "phased_array_2ch": lambda: (
        phased_array(n_channels=2).circuit,
        {"port_labels": phased_array(n_channels=2).port_labels},
    ),
}


def _assert_results_equivalent(got, want):
    """Field-by-field equality of two PipelineResults (minus timings)."""
    assert pipeline_result_fingerprint(got) == pipeline_result_fingerprint(want)
    assert got.annotation.element_classes == want.annotation.element_classes
    assert got.annotation.net_classes == want.annotation.net_classes
    assert np.array_equal(
        got.gcn_annotation.vertex_classes, want.gcn_annotation.vertex_classes
    )
    assert got.hierarchy.render() == want.hierarchy.render()
    assert list(got.constraints) == list(want.constraints)
    assert got.diagnostics == want.diagnostics
    assert (got.degraded, got.degraded_reason) == (
        want.degraded,
        want.degraded_reason,
    )
    assert set(got.timings) == set(want.timings)


class TestGoldenEquivalence:
    """``run()`` (staged) ≡ ``_run_monolith()`` on every example."""

    @pytest.mark.parametrize("case", sorted(OTA_CASES))
    def test_ota_examples(self, ota_pipeline, case):
        netlist, kwargs = OTA_CASES[case]()
        staged = ota_pipeline.run(netlist, name=case, **kwargs)
        legacy = ota_pipeline._run_monolith(netlist, name=case, **kwargs)
        _assert_results_equivalent(staged, legacy)

    @pytest.mark.parametrize("case", sorted(RF_CASES))
    def test_rf_examples(self, rf_pipeline, case):
        netlist, kwargs = RF_CASES[case]()
        staged = rf_pipeline.run(netlist, name=case, **kwargs)
        legacy = rf_pipeline._run_monolith(netlist, name=case, **kwargs)
        _assert_results_equivalent(staged, legacy)

    def test_lenient_mode_equivalent(self, ota_pipeline):
        deck = DIFF_OTA_DECK + "\nq_bogus a b c npn\n.end\n"
        staged = ota_pipeline.run(deck, mode="lenient")
        legacy = ota_pipeline._run_monolith(deck, mode="lenient")
        _assert_results_equivalent(staged, legacy)
        assert staged.diagnostics  # the bogus card was reported, not fatal

    def test_profile_has_same_stages(self, ota_pipeline):
        staged = ota_pipeline.run(DIFF_OTA_DECK, profile=True)
        legacy = ota_pipeline._run_monolith(DIFF_OTA_DECK, profile=True)
        assert set(staged.profile["stages"]) == set(legacy.profile["stages"])

    def test_final_annotation_identity_preserved(self, ota_pipeline):
        result = ota_pipeline.run(DIFF_OTA_DECK)
        assert result.annotation is result.post2.annotation


class TestStageNames:
    """Satellite: one canonical stage-name enum everywhere."""

    def test_timing_stages_match_result_keys(self, ota_pipeline):
        result = ota_pipeline.run(CURRENT_MIRROR_DECK)
        assert set(result.timings) == set(TIMING_STAGES)

    def test_stage_order_covers_artifact_types(self):
        assert tuple(ARTIFACT_TYPES) == STAGE_ORDER
        for name, artifact_type in ARTIFACT_TYPES.items():
            assert artifact_type.stage is name

    def test_coerce_stage(self):
        assert coerce_stage("gcn") is StageName.GCN
        assert coerce_stage(StageName.POST1) is StageName.POST1
        with pytest.raises(ValueError):
            coerce_stage("not-a-stage")

    def test_fold_timings_folds_parse_into_preprocess(self):
        folded = fold_timings(
            {StageName.PARSE: 1.0, StageName.PREPROCESS: 0.5, StageName.GCN: 2.0}
        )
        assert folded == {"preprocess": 1.5, "gcn": 2.0}

    def test_resilience_stage_accepts_enum(self):
        from repro.runtime.resilience import stage

        timings: dict[str, float] = {}
        with pytest.raises(RuntimeError) as err:
            with stage(StageName.GRAPH, timings):
                raise RuntimeError("boom")
        assert err.value._gana_stage == "graph"
        assert "graph" in timings

    def test_profiler_accepts_enum(self):
        from repro.runtime.profile import PipelineProfiler

        profiler = PipelineProfiler()
        profiler.record_stage(StageName.POST1, 0.25)
        assert profiler.as_dict()["stages"]["post1"] == 0.25


class TestArtifactRoundTrip:
    """Every artifact type saves and loads back fingerprint-identical."""

    @pytest.fixture(scope="class")
    def saved_runs(self, ota_pipeline, rf_pipeline, tmp_path_factory):
        runs = []
        for case in sorted(OTA_CASES):
            netlist, kwargs = OTA_CASES[case]()
            out = tmp_path_factory.mktemp(f"artifacts-{case}")
            staged = ota_pipeline.run_staged(
                netlist, name=case, save_artifacts=out, **kwargs
            )
            runs.append((case, staged, out))
        for case in sorted(RF_CASES):
            netlist, kwargs = RF_CASES[case]()
            out = tmp_path_factory.mktemp(f"artifacts-{case}")
            staged = rf_pipeline.run_staged(
                netlist, name=case, save_artifacts=out, **kwargs
            )
            runs.append((case, staged, out))
        return runs

    def test_all_stages_saved(self, saved_runs):
        for _case, staged, _out in saved_runs:
            assert staged.complete
            assert set(staged.saved) == set(STAGE_ORDER)

    def test_round_trip_fingerprint_identical(self, saved_runs):
        for case, staged, _out in saved_runs:
            for name, artifact in staged.artifacts.items():
                loaded = type(artifact).load(staged.saved[name])
                assert type(loaded) is type(artifact), case
                assert loaded.stage is artifact.stage
                assert (
                    loaded.content_fingerprint()
                    == artifact.content_fingerprint()
                ), f"{case}/{name.value} changed across save/load"
                assert loaded.fingerprint == artifact.fingerprint

    def test_load_artifacts_directory(self, saved_runs):
        _case, staged, out = saved_runs[0]
        loaded = load_artifacts(out)
        assert [a.stage for a in loaded] == list(STAGE_ORDER)
        final = loaded[-1]
        assert isinstance(final, AnnotatedDesign)
        assert final.hierarchy.render() == staged.final.hierarchy.render()

    def test_load_rejects_wrong_type(self, saved_runs):
        _case, staged, _out = saved_runs[0]
        with pytest.raises(ArtifactError):
            AnnotatedDesign.load(staged.saved[StageName.PARSE])

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.artifact.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.raises(ArtifactError):
            Artifact.load(path)

    def test_content_fingerprint_is_stable(self, saved_runs):
        for _case, staged, _out in saved_runs:
            for artifact in staged.artifacts.values():
                assert (
                    artifact.content_fingerprint()
                    == artifact.content_fingerprint()
                )

    def test_content_fingerprint_discriminates(self):
        assert content_fingerprint("a") != content_fingerprint("b")
        assert content_fingerprint(1) != content_fingerprint("1")
        assert content_fingerprint([1, 2]) != content_fingerprint((1, 2))
        assert content_fingerprint({"x": 1, "y": 2}) == content_fingerprint(
            {"y": 2, "x": 1}
        )


class TestIncrementalRecompute:
    """Unchanged fingerprints ⇒ cache hits; changed config ⇒ partial."""

    def test_warm_run_hits_every_stage(self, ota_pipeline, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cold = ota_pipeline.run_staged(DIFF_OTA_DECK, artifact_cache=cache)
        assert cold.cache_hits == ()
        warm = ota_pipeline.run_staged(DIFF_OTA_DECK, artifact_cache=cache)
        assert set(warm.cache_hits) == set(STAGE_ORDER)
        assert pipeline_result_fingerprint(
            ota_pipeline.result_from_staged(warm)
        ) == pipeline_result_fingerprint(ota_pipeline.result_from_staged(cold))

    def test_library_change_reuses_upstream_stages(
        self, quick_ota_annotator, tmp_path
    ):
        from repro.primitives.library import default_library, extended_library

        cache = ArtifactCache(tmp_path / "cache")
        base = GanaPipeline(
            annotator=quick_ota_annotator, library=default_library()
        )
        base.run_staged(HIERARCHICAL_DECK, artifact_cache=cache)

        changed = GanaPipeline(
            annotator=quick_ota_annotator, library=extended_library()
        )
        warm = changed.run_staged(HIERARCHICAL_DECK, artifact_cache=cache)
        # parse→gcn are library-independent: all reused.  post1 onwards
        # depends on the library fingerprint: all recomputed.
        assert set(warm.cache_hits) == {
            StageName.PARSE,
            StageName.PREPROCESS,
            StageName.GRAPH,
            StageName.GCN,
        }
        fresh = changed._run_monolith(HIERARCHICAL_DECK)
        _assert_results_equivalent(changed.result_from_staged(warm), fresh)

    def test_deck_change_invalidates_everything(self, ota_pipeline, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        ota_pipeline.run_staged(DIFF_OTA_DECK, artifact_cache=cache)
        other = ota_pipeline.run_staged(CURRENT_MIRROR_DECK, artifact_cache=cache)
        assert other.cache_hits == ()

    def test_port_labels_keep_parse_hit(self, ota_pipeline, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        ota_pipeline.run_staged(DIFF_OTA_DECK, artifact_cache=cache)
        relabeled = ota_pipeline.run_staged(
            DIFF_OTA_DECK,
            port_labels={"voutp": "output"},
            artifact_cache=cache,
        )
        # The deck did not change, so parse is reusable; preprocess
        # (whose key includes the labels) and everything after rerun.
        assert set(relabeled.cache_hits) == {StageName.PARSE}


class TestStopAndResume:
    def test_stop_after_graph(self, ota_pipeline, tmp_path):
        staged = ota_pipeline.run_staged(
            DIFF_OTA_DECK, save_artifacts=tmp_path, stop_after="graph"
        )
        assert not staged.complete
        assert set(staged.artifacts) == {
            StageName.PARSE,
            StageName.PREPROCESS,
            StageName.GRAPH,
        }
        assert staged.last_artifact().stage is StageName.GRAPH
        with pytest.raises(ArtifactError):
            staged.final

    def test_resume_completes_identically(self, ota_pipeline, tmp_path):
        cold = ota_pipeline.run(DIFF_OTA_DECK, name="resume-case")
        ota_pipeline.run_staged(
            DIFF_OTA_DECK,
            name="resume-case",
            save_artifacts=tmp_path,
            stop_after=StageName.GCN,
        )
        resumed = ota_pipeline.run_staged(
            name="resume-case", resume_from=tmp_path
        )
        assert resumed.complete
        _assert_results_equivalent(
            ota_pipeline.result_from_staged(resumed), cold
        )

    def test_resume_from_single_artifact_object(self, ota_pipeline):
        partial = ota_pipeline.run_staged(
            DIFF_OTA_DECK, stop_after=StageName.POST1
        )
        resumed = ota_pipeline.run_staged(
            resume_from=partial.last_artifact()
        )
        assert resumed.complete
        cold = ota_pipeline.run(DIFF_OTA_DECK)
        assert (
            resumed.final.hierarchy.render() == cold.hierarchy.render()
        )

    def test_resume_with_nothing_fails(self, ota_pipeline):
        with pytest.raises((ArtifactError, ValueError)):
            ota_pipeline.run_staged(None)
