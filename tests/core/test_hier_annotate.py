"""Hierarchy-scoped annotation (ISSUE 9).

Golden byte-identity: the ``--hier`` path must produce exactly the
annotation the flat path computes on every example netlist — repeated
instances only make it faster, never different.  Plus: the
HierMatchCache reuse/replay machinery, definition-keyed persistence
and invalidation, advisory per-definition GCN summaries, and the
instance-table hierarchy mode.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import GanaPipeline
from repro.core.stages import pipeline_result_fingerprint
from repro.datasets.systems import phased_array_hier
from repro.runtime.cache import ArtifactCache
from repro.spice.flatten import flatten_hierarchical
from repro.spice.parser import parse_netlist
from tests.conftest import HIERARCHICAL_DECK
from tests.core.test_stages import (
    OTA_CASES,
    RF_CASES,
    _assert_results_equivalent,
)

#: Three identical OTA cells plus one glue mirror — small enough for
#: quick tests, repeated enough that the hier path actually reuses.
OTA_ARRAY_DECK = """
* three identical ota cells
.global vdd! gnd!
.subckt otacell vinp vinn voutp voutn
m0 n1 n1 gnd! gnd! nmos w=1u l=100n
m1 id n1 gnd! gnd! nmos w=1u l=100n
m2 voutn vinp id gnd! nmos w=2u l=100n
m3 voutp vinn id gnd! nmos w=2u l=100n
m4 voutn vbp vdd! vdd! pmos w=4u l=100n
m5 voutp vbp vdd! vdd! pmos w=4u l=100n
.ends
x0 a0 b0 c0 d0 otacell
x1 a1 b1 c1 d1 otacell
x2 a2 b2 c2 d2 otacell
mglue ng ng gnd! gnd! nmos w=1u l=100n
.end
"""


@pytest.fixture(scope="module")
def ota_pipeline(quick_ota_annotator):
    return GanaPipeline(annotator=quick_ota_annotator)


@pytest.fixture(scope="module")
def rf_pipeline(quick_rf_annotator):
    return GanaPipeline(annotator=quick_rf_annotator)


class TestGoldenIdentity:
    """``run(hier=True)`` ≡ ``run()`` on every example netlist."""

    @pytest.mark.parametrize("case", sorted(OTA_CASES))
    def test_ota_examples(self, ota_pipeline, case):
        netlist, kwargs = OTA_CASES[case]()
        hier = ota_pipeline.run(netlist, name=case, hier=True, **kwargs)
        flat = ota_pipeline.run(netlist, name=case, **kwargs)
        _assert_results_equivalent(hier, flat)

    @pytest.mark.parametrize("case", sorted(RF_CASES))
    def test_rf_examples(self, rf_pipeline, case):
        netlist, kwargs = RF_CASES[case]()
        hier = rf_pipeline.run(netlist, name=case, hier=True, **kwargs)
        flat = rf_pipeline.run(netlist, name=case, **kwargs)
        _assert_results_equivalent(hier, flat)

    def test_ota_array(self, ota_pipeline):
        hier = ota_pipeline.run(OTA_ARRAY_DECK, hier=True)
        flat = ota_pipeline.run(OTA_ARRAY_DECK)
        _assert_results_equivalent(hier, flat)

    def test_phased_array_hier(self, rf_pipeline):
        netlist, port_labels = phased_array_hier(n_channels=2)
        hier = rf_pipeline.run(
            netlist, port_labels=port_labels, hier=True, name="pa"
        )
        flat = rf_pipeline.run(netlist, port_labels=port_labels, name="pa")
        _assert_results_equivalent(hier, flat)

    def test_lenient_mode_identical(self, ota_pipeline):
        deck = OTA_ARRAY_DECK.replace(
            ".end\n", "xbad z1 z2 nosuchcell\n.end\n"
        )
        hier = ota_pipeline.run(deck, mode="lenient", hier=True)
        flat = ota_pipeline.run(deck, mode="lenient")
        _assert_results_equivalent(hier, flat)
        assert hier.diagnostics


class TestExampleNetlistIdentity:
    """Acceptance: hier ≡ flat on every deck under examples/netlists/."""

    def test_example_deck(self, ota_pipeline, example_deck_path):
        text = example_deck_path.read_text()
        hier = ota_pipeline.run(text, name=example_deck_path.stem, hier=True)
        flat = ota_pipeline.run(text, name=example_deck_path.stem)
        _assert_results_equivalent(hier, flat)


class TestHierReport:
    def test_flat_run_has_no_report(self, ota_pipeline):
        assert ota_pipeline.run(OTA_ARRAY_DECK).hier is None

    def test_reuse_on_repeated_instances(self, ota_pipeline):
        report = ota_pipeline.run(OTA_ARRAY_DECK, hier=True).hier
        assert report is not None
        assert report.n_instances == 3
        assert report.n_unique_groups == 1
        assert report.reused > 0
        assert report.replayed > 0
        assert report.guard_failures == 0
        assert report.interior + report.boundary == report.cccs

    def test_per_definition_attribution(self, ota_pipeline):
        report = ota_pipeline.run(OTA_ARRAY_DECK, hier=True).hier
        assert "otacell" in report.per_definition
        stats = report.per_definition["otacell"]
        assert stats["instances"] == 3
        assert stats["reused"] > 0

    def test_as_dict_round_trips_counts(self, ota_pipeline):
        report = ota_pipeline.run(OTA_ARRAY_DECK, hier=True).hier
        data = report.as_dict()
        assert data["reused"] == report.reused
        assert data["replayed"] == report.replayed
        assert data["per_definition"]["otacell"]["instances"] == 3

    def test_flat_deck_degrades_gracefully(self, ota_pipeline):
        # No instances → the hier flag is a no-op, not an error.
        from tests.conftest import DIFF_OTA_DECK

        hier = ota_pipeline.run(DIFF_OTA_DECK, hier=True)
        flat = ota_pipeline.run(DIFF_OTA_DECK)
        _assert_results_equivalent(hier, flat)


class TestDefinitionKeyedPersistence:
    def test_warm_run_hits_persisted_entries(self, ota_pipeline, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cold = ota_pipeline.run_staged(
            OTA_ARRAY_DECK, hier=True, artifact_cache=cache
        )
        # Force post1 to recompute while keeping the persisted match
        # entries: drop everything except the hier-matches entries
        # (stage-artifact keys are bare content hashes).
        removed = 0
        for path in cache.directory.glob("*.pkl"):
            if not path.name.startswith("hier-matches"):
                path.unlink()
                removed += 1
        assert removed > 0
        warm = ota_pipeline.run_staged(
            OTA_ARRAY_DECK, hier=True, artifact_cache=cache
        )
        report = warm.final.hier
        assert report.persisted_hits > 0
        assert pipeline_result_fingerprint(
            ota_pipeline.result_from_staged(warm)
        ) == pipeline_result_fingerprint(ota_pipeline.result_from_staged(cold))

    def test_invalidate_one_definition(self, ota_pipeline, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        ota_pipeline.run_staged(OTA_ARRAY_DECK, hier=True, artifact_cache=cache)
        _flat, tree = flatten_hierarchical(parse_netlist(OTA_ARRAY_DECK))
        fp = tree.definitions["otacell"].fingerprint
        prefix = f"hier-matches-def-{fp[:12]}"
        entries = list(cache.directory.glob(f"{prefix}*"))
        assert entries, "definition-scoped entries were persisted"
        removed = cache.invalidate_prefix(prefix)
        assert removed == len(entries)
        assert not list(cache.directory.glob(f"{prefix}*"))

    def test_body_edit_changes_entry_keys(self, tmp_path):
        edited = OTA_ARRAY_DECK.replace("w=2u", "w=3u")
        _f1, tree1 = flatten_hierarchical(parse_netlist(OTA_ARRAY_DECK))
        _f2, tree2 = flatten_hierarchical(parse_netlist(edited))
        fp1 = tree1.definitions["otacell"].fingerprint
        fp2 = tree2.definitions["otacell"].fingerprint
        assert fp1 != fp2  # old entries become unreachable, sweepable


class TestDefinitionAnnotations:
    def test_summaries_cover_unique_groups(self, ota_pipeline):
        report = ota_pipeline.run(OTA_ARRAY_DECK, hier=True).hier
        assert len(report.definition_annotations) == 1
        summary = report.definition_annotations[0]
        assert summary.definition == "otacell"
        assert summary.n_instances == 3
        assert set(summary.instance_paths) == {"x0", "x1", "x2"}
        assert summary.n_devices > 0
        assert summary.majority_class
        assert dict(summary.class_counts)

    def test_in_process_memo_populated(self, quick_ota_annotator):
        from repro.core import hier_annotate as ha

        _flat, tree = flatten_hierarchical(parse_netlist(OTA_ARRAY_DECK))
        first = ha.annotate_definitions(tree, quick_ota_annotator)
        assert first
        key_count = len(ha._DEF_ANN_MEMO)
        assert key_count > 0
        again = ha.annotate_definitions(tree, quick_ota_annotator)
        assert len(ha._DEF_ANN_MEMO) == key_count
        assert [d.fingerprint for d in again] == [d.fingerprint for d in first]


class TestHierTreeMode:
    def test_instance_nesting_in_hierarchy(self, ota_pipeline):
        result = ota_pipeline.run(OTA_ARRAY_DECK, hier_tree=True)
        rendered = result.hierarchy.render()
        for path in ("x0", "x1", "x2"):
            node = result.hierarchy.child(path)
            assert node is not None, f"{path} missing from\n{rendered}"
            assert node.block_class == "otacell"
            assert node.children, "recognized blocks hang under the instance"
        # The glue mirror is not inside any instance: stays at the root.
        assert any(
            "mglue" in n.all_devices() for n in result.hierarchy.children
        )

    def test_hier_tree_implies_hier(self, ota_pipeline):
        result = ota_pipeline.run(OTA_ARRAY_DECK, hier_tree=True)
        assert result.hier is not None

    def test_devices_preserved_under_nesting(self, ota_pipeline):
        flat = ota_pipeline.run(HIERARCHICAL_DECK)
        nested = ota_pipeline.run(HIERARCHICAL_DECK, hier_tree=True)
        assert nested.hierarchy.all_devices() == flat.hierarchy.all_devices()
        assert (
            nested.annotation.element_classes == flat.annotation.element_classes
        )


def _mirror_cell_deck(n_instances: int, widths: tuple[int, ...], shared: bool):
    lines = [
        "* generated hierarchical deck",
        ".global vdd! gnd!",
        ".subckt cell a b",
    ]
    for i, w in enumerate(widths):
        ref = "a" if i == 0 else "nbias"
        lines.append(f"md{i} {'nbias' if i == 0 else 'b'} {ref} gnd! gnd! nmos w={w}u l=100n")
    lines.append("rload b vdd! 10k")
    lines.append(".ends")
    for i in range(n_instances):
        inp = "shared_in" if shared else f"in{i}"
        lines.append(f"x{i} {inp} out{i} cell")
    lines.append("mtop t1 t1 gnd! gnd! nmos w=1u l=100n")
    lines.append(".end")
    return "\n".join(lines) + "\n"


@pytest.mark.property
class TestPropertyIdentity:
    """Property: hier ≡ flat on random small hierarchical decks."""

    @settings(max_examples=10, deadline=None)
    @given(
        n_instances=st.integers(min_value=1, max_value=4),
        widths=st.tuples(
            st.integers(min_value=1, max_value=4),
            st.integers(min_value=1, max_value=4),
        ),
        shared=st.booleans(),
    )
    def test_random_decks(
        self, ota_pipeline_ref, n_instances, widths, shared
    ):
        deck = _mirror_cell_deck(n_instances, widths, shared)
        hier = ota_pipeline_ref.run(deck, hier=True)
        flat = ota_pipeline_ref.run(deck)
        _assert_results_equivalent(hier, flat)


@pytest.fixture(scope="module")
def ota_pipeline_ref(quick_ota_annotator):
    # hypothesis forbids function-scoped fixtures; module scope is fine
    # (the pipeline is stateless across runs).
    return GanaPipeline(annotator=quick_ota_annotator)
