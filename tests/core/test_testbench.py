"""Testbench inference: antenna / oscillating / bias from sources."""

import pytest

from repro.core.testbench import (
    infer_net_roles,
    infer_port_labels,
    strip_sources,
)
from repro.graph.features import NetRole
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist


def _flat(deck: str):
    return flatten(parse_netlist(deck))


class TestWaveformParsing:
    def test_sin_source_shape_captured(self):
        netlist = parse_netlist("vlo lo 0 sin(0 1 1g)\n.end\n")
        assert netlist.top.devices[0].model == "sin"

    def test_pulse_source(self):
        netlist = parse_netlist("vclk clk 0 pulse(0 1.8 0 10p 10p 1n 2n)\n.end\n")
        assert netlist.top.devices[0].model == "pulse"

    def test_dc_source_has_no_shape(self):
        netlist = parse_netlist("vb nb 0 dc 0.7\n.end\n")
        assert netlist.top.devices[0].model is None
        assert netlist.top.devices[0].value == pytest.approx(0.7)


class TestOscillatingInference:
    def test_sin_drive_is_oscillating(self):
        labels = infer_port_labels(_flat("vlo lo 0 sin(0 1 1g)\n.end\n"))
        assert labels == {"lo": "oscillating"}

    def test_dc_source_not_oscillating(self):
        labels = infer_port_labels(_flat("vb nb 0 dc 0.7\n.end\n"))
        assert labels == {}

    def test_pulse_counts_as_oscillating(self):
        labels = infer_port_labels(_flat("vclk clk 0 pulse(0 1 0 1p 1p 1n 2n)\n.end\n"))
        assert labels["clk"] == "oscillating"

    def test_reversed_terminals(self):
        labels = infer_port_labels(_flat("vlo 0 lo sin(0 1 1g)\n.end\n"))
        assert labels == {"lo": "oscillating"}


class TestAntennaInference:
    RF_PORT_DECK = """
vrf src 0 sin(0 0.01 2.4g)
rport src rfin 50
mlna out rfin gnd! gnd! nmos
.end
"""

    def test_port_resistor_makes_antenna(self):
        labels = infer_port_labels(_flat(self.RF_PORT_DECK))
        assert labels["rfin"] == "antenna"
        assert "src" not in labels  # consumed by the port

    def test_non_port_resistance_stays_oscillating(self):
        deck = """
vlo src 0 sin(0 1 1g)
rbig src inx 10k
.end
"""
        labels = infer_port_labels(_flat(deck))
        assert labels == {"src": "oscillating"}

    def test_mixed_testbench(self):
        deck = """
vrf asrc 0 sin(0 0.01 2.4g)
rport asrc rfin 50
vlo lo 0 sin(0 0.5 1g)
.end
"""
        labels = infer_port_labels(_flat(deck))
        assert labels == {"rfin": "antenna", "lo": "oscillating"}


class TestBiasRoles:
    def test_dc_source_is_bias(self):
        roles = infer_net_roles(_flat("vb nb 0 dc 0.7\n.end\n"))
        assert roles == {"nb": NetRole.BIAS}

    def test_sin_source_is_not_bias(self):
        roles = infer_net_roles(_flat("vlo lo 0 sin(0 1 1g)\n.end\n"))
        assert roles == {}

    def test_supply_source_excluded(self):
        roles = infer_net_roles(_flat("vdd vdd! 0 dc 1.8\n.end\n"))
        assert roles == {}


class TestStripSources:
    def test_sources_removed_devices_kept(self):
        flat = _flat("vb nb 0 dc 0.7\nm1 out nb gnd! gnd! nmos\n.end\n")
        stripped = strip_sources(flat)
        assert [d.name for d in stripped.devices] == ["m1"]


class TestPipelineIntegration:
    def test_inferred_labels_match_explicit(self, quick_rf_annotator):
        """A receiver deck with its testbench sources must recognize as
        well as the same deck with designer-provided labels."""
        from repro.core.pipeline import GanaPipeline
        from repro.datasets.rf import ReceiverSpec, generate_receiver
        from repro.spice.netlist import DeviceKind, Device

        pipeline = GanaPipeline(annotator=quick_rf_annotator)
        lc = generate_receiver(ReceiverSpec(osc_topology="lc_nmos"))

        explicit = pipeline.run(
            lc.circuit, port_labels=lc.port_labels, name="explicit",
            infer_testbench=False,
        )
        truth = lc.truth(explicit.graph)
        explicit_acc = explicit.accuracies(truth)["post2"]

        # Build the testbench variant: RF port + no designer labels.
        import copy

        circuit = copy.deepcopy(lc.circuit)
        circuit.add(
            Device(
                name="vrf", kind=DeviceKind.VSOURCE,
                pins=(("p", "rfsrc"), ("n", "0")), model="sin",
            )
        )
        circuit.add(
            Device(
                name="rport", kind=DeviceKind.RESISTOR,
                pins=(("p", "rfsrc"), ("n", "rfin")), value=50.0,
            )
        )
        # The paper's receivers take an external LO; our generator's
        # oscillator is on-chip, so only the antenna needs inference —
        # the oscillating nets keep the generator's labels here.
        inferred = pipeline.run(
            circuit,
            port_labels={
                k: v for k, v in lc.port_labels.items() if v == "oscillating"
            },
            name="inferred",
        )
        inferred_acc = inferred.accuracies(truth)["post2"]
        assert inferred_acc >= explicit_acc - 1e-9
