"""Constraint model, class rules, symmetry-axis propagation."""

import pytest

from repro.core.constraints import (
    Constraint,
    ConstraintKind,
    ConstraintSet,
    merge_symmetry_axes,
    propagate,
    subblock_constraints,
)
from repro.exceptions import ConstraintError


def _sym(*members, source=""):
    return Constraint(ConstraintKind.SYMMETRY, tuple(members), source=source)


class TestConstraint:
    def test_requires_members(self):
        with pytest.raises(ConstraintError):
            Constraint(ConstraintKind.MATCHING, ())

    def test_rejects_duplicate_members(self):
        with pytest.raises(ConstraintError):
            Constraint(ConstraintKind.MATCHING, ("a", "a"))

    def test_renamed(self):
        c = Constraint(ConstraintKind.MATCHING, ("m1", "m2"))
        renamed = c.renamed({"m1": "x/m1"})
        assert renamed.members == ("x/m1", "m2")

    def test_with_source(self):
        c = _sym("a", "b").with_source("DP-N")
        assert c.source == "DP-N"

    def test_attribute_map(self):
        c = Constraint(
            ConstraintKind.PROXIMITY, ("lna0",),
            attributes=(("reference", "antenna"),),
        )
        assert c.attribute_map == {"reference": "antenna"}

    def test_equality_and_dedup(self):
        s = ConstraintSet()
        s.add(_sym("a", "b"))
        s.add(_sym("a", "b"))
        assert len(s) == 1


class TestSubblockRules:
    def test_ota_gets_symmetry(self):
        constraints = subblock_constraints("ota", "ota0")
        kinds = {c.kind for c in constraints}
        assert ConstraintKind.SYMMETRY in kinds

    def test_lna_gets_proximity_and_guard_ring(self):
        constraints = subblock_constraints("lna", "lna0")
        kinds = {c.kind for c in constraints}
        assert ConstraintKind.PROXIMITY in kinds
        assert ConstraintKind.GUARD_RING in kinds
        assert ConstraintKind.MIN_WIRELENGTH in kinds

    def test_proximity_references_antenna(self):
        constraints = subblock_constraints("lna", "lna0")
        prox = next(
            c for c in constraints if c.kind is ConstraintKind.PROXIMITY
        )
        assert prox.attribute_map["reference"] == "antenna"

    def test_unknown_class_gets_nothing(self):
        assert subblock_constraints("whatever", "x") == []

    def test_members_bind_block_name(self):
        constraints = subblock_constraints("osc", "osc3")
        assert all(c.members == ("osc3",) for c in constraints)


class TestConstraintSet:
    def test_of_kind(self):
        s = ConstraintSet()
        s.add(_sym("a", "b"))
        s.add(Constraint(ConstraintKind.MATCHING, ("a", "b")))
        assert len(s.of_kind(ConstraintKind.SYMMETRY)) == 1

    def test_involving(self):
        s = ConstraintSet()
        s.add(_sym("a", "b"))
        s.add(_sym("c", "d"))
        assert len(s.involving("a")) == 1
        assert len(s.involving("z")) == 0

    def test_iteration(self):
        s = ConstraintSet()
        s.extend([_sym("a", "b"), _sym("c", "d")])
        assert len(list(s)) == 2


class TestSymmetryMerging:
    def test_disjoint_groups_stay_separate(self):
        s = ConstraintSet()
        s.extend([_sym("a", "b"), _sym("c", "d")])
        merged = merge_symmetry_axes(s)
        assert len(merged) == 2

    def test_overlapping_members_merge(self):
        """Fig. 1's CM + DP sharing devices combine to one axis."""
        s = ConstraintSet()
        s.extend([_sym("m1", "m2"), _sym("m2", "m3")])
        merged = merge_symmetry_axes(s)
        assert len(merged) == 1
        assert set(merged[0].members) == {"m1", "m2", "m3"}

    def test_same_source_merges(self):
        s = ConstraintSet()
        s.extend([_sym("a", "b", source="ota0"), _sym("c", "d", source="ota0")])
        merged = merge_symmetry_axes(s)
        assert len(merged) == 1

    def test_transitive_closure(self):
        s = ConstraintSet()
        s.extend([_sym("a", "b"), _sym("c", "d"), _sym("b", "c")])
        merged = merge_symmetry_axes(s)
        assert len(merged) == 1
        assert set(merged[0].members) == {"a", "b", "c", "d"}

    def test_propagate_keeps_other_kinds(self):
        s = ConstraintSet()
        s.add(Constraint(ConstraintKind.MATCHING, ("a", "b")))
        s.add(_sym("a", "b"))
        result = propagate(s)
        kinds = [c.kind for c in result]
        assert ConstraintKind.MATCHING in kinds
        assert ConstraintKind.SYMMETRY in kinds
