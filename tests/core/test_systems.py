"""System-level recognition (receiver chains) over the block graph."""

import pytest

from repro.core.hierarchy import HierarchyNode, NodeKind
from repro.core.systems import (
    BlockGraph,
    annotate_systems,
    build_block_graph,
    detect_receivers,
)
from repro.graph.bipartite import CircuitGraph
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist

RECEIVER_DECK = """
* lna -> mixer <- osc, plus an IF inverter
mlna lnaout vb_lna rfin gnd! nmos
rlna vdd! lnaout 600
mcc1 lo lob t gnd! nmos
mcc2 lob lo t gnd! nmos
mt t vb gnd! gnd! nmos
mrf mxt lnaout gnd! gnd! nmos
msw1 ifout lo mxt gnd! nmos
msw2 ifn lob mxt gnd! nmos
rl1 vdd! ifout 1k
rl2 vdd! ifn 1k
minv1 if2 ifout gnd! gnd! nmos
minv2 if2 ifout vdd! vdd! pmos
.end
"""


def _hierarchy_and_graph():
    graph = CircuitGraph.from_circuit(flatten(parse_netlist(RECEIVER_DECK)))
    root = HierarchyNode(name="rx", kind=NodeKind.SYSTEM)
    groups = {
        "lna0": ("lna", ("mlna", "rlna")),
        "osc0": ("osc", ("mcc1", "mcc2", "mt")),
        "mixer0": ("mixer", ("mrf", "msw1", "msw2", "rl1", "rl2")),
        "inv0": ("inv", ("minv1", "minv2")),
    }
    for name, (cls, devs) in groups.items():
        root.add(
            HierarchyNode(
                name=name, kind=NodeKind.SUBBLOCK, block_class=cls,
                devices=devs,
            )
        )
    return root, graph


class TestBlockGraph:
    def test_edges_follow_signal_flow(self):
        root, graph = _hierarchy_and_graph()
        bg = build_block_graph(root, graph)
        assert ("lna0", "mixer0") in bg.edges
        assert ("osc0", "mixer0") in bg.edges
        assert ("mixer0", "inv0") in bg.edges

    def test_no_backward_gate_edges(self):
        root, graph = _hierarchy_and_graph()
        bg = build_block_graph(root, graph)
        assert ("mixer0", "lna0") not in bg.edges

    def test_predecessors_successors(self):
        root, graph = _hierarchy_and_graph()
        bg = build_block_graph(root, graph)
        assert bg.predecessors("mixer0") == {"lna0", "osc0"}
        assert "inv0" in bg.successors("mixer0")

    def test_of_class(self):
        root, graph = _hierarchy_and_graph()
        bg = build_block_graph(root, graph)
        assert bg.of_class("mixer") == ["mixer0"]


class TestDetectReceivers:
    def test_full_chain_found(self):
        root, graph = _hierarchy_and_graph()
        bg = build_block_graph(root, graph)
        (system,) = detect_receivers(bg)
        assert system.system_class == "receiver"
        assert set(system.blocks) == {"lna0", "osc0", "mixer0", "inv0"}

    def test_mixer_without_lo_not_a_receiver(self):
        bg = BlockGraph(
            classes={"lna0": "lna", "mixer0": "mixer"},
            devices={"lna0": set(), "mixer0": set()},
            edges={("lna0", "mixer0")},
        )
        assert detect_receivers(bg) == []

    def test_mixer_without_rf_not_a_receiver(self):
        bg = BlockGraph(
            classes={"osc0": "osc", "mixer0": "mixer"},
            devices={"osc0": set(), "mixer0": set()},
            edges={("osc0", "mixer0")},
        )
        assert detect_receivers(bg) == []

    def test_buffered_lo_path_traversed(self):
        bg = BlockGraph(
            classes={
                "lna0": "lna", "mixer0": "mixer",
                "buf0": "buf", "osc0": "osc",
            },
            devices={k: set() for k in ("lna0", "mixer0", "buf0", "osc0")},
            edges={
                ("lna0", "mixer0"),
                ("buf0", "mixer0"),
                ("osc0", "buf0"),
            },
        )
        (system,) = detect_receivers(bg)
        assert "osc0" in system.blocks
        assert "buf0" in system.blocks

    def test_multi_stage_lna_chain(self):
        bg = BlockGraph(
            classes={
                "lna0": "lna", "lna1": "lna", "bpf0": "bpf",
                "mixer0": "mixer", "osc0": "osc",
            },
            devices={k: set() for k in ("lna0", "lna1", "bpf0", "mixer0", "osc0")},
            edges={
                ("lna0", "lna1"),
                ("lna1", "bpf0"),
                ("bpf0", "mixer0"),
                ("osc0", "mixer0"),
            },
        )
        (system,) = detect_receivers(bg)
        assert {"lna0", "lna1", "bpf0"} <= set(system.blocks)


class TestAnnotateSystems:
    def test_tree_gains_system_node(self):
        root, graph = _hierarchy_and_graph()
        systems = annotate_systems(root, graph)
        assert len(systems) == 1
        receiver = root.find("receiver0")
        assert receiver is not None
        assert receiver.kind is NodeKind.SYSTEM
        assert {c.name for c in receiver.children} == {
            "lna0", "osc0", "mixer0", "inv0",
        }

    def test_no_system_leaves_tree_untouched(self):
        root = HierarchyNode(name="amp", kind=NodeKind.SYSTEM)
        root.add(
            HierarchyNode(
                name="ota0", kind=NodeKind.SUBBLOCK, block_class="ota",
                devices=("m1",),
            )
        )
        deck = "m1 out in gnd! gnd! nmos\n.end\n"
        graph = CircuitGraph.from_circuit(flatten(parse_netlist(deck)))
        assert annotate_systems(root, graph) == []
        assert [c.name for c in root.children] == ["ota0"]


class TestEndToEndPhasedArray:
    def test_one_receiver_per_channel(self, quick_rf_annotator):
        from repro.core.pipeline import GanaPipeline
        from repro.datasets.systems import phased_array

        pipeline = GanaPipeline(annotator=quick_rf_annotator)
        lc = phased_array(n_channels=3)
        result = pipeline.run(
            lc.circuit, port_labels=lc.port_labels, name=lc.name
        )
        systems = annotate_systems(result.hierarchy, result.graph)
        assert len(systems) == 3
        for system in systems:
            classes = {
                result.hierarchy.find(b).block_class.lower()
                if result.hierarchy.find(b)
                else "?"
                for b in system.blocks
            }
            assert "mixer" in classes


class TestNestSupportBlocks:
    def test_bias_nested_under_its_ota(self, quick_ota_annotator):
        """Fig. 1's containment: a bias network serving one OTA nests
        inside it, giving multi-level sub-block hierarchy."""
        from repro.core.pipeline import GanaPipeline
        from repro.core.systems import nest_support_blocks
        from repro.datasets.ota import OtaSpec, generate_ota

        pipeline = GanaPipeline(annotator=quick_ota_annotator)
        lc = generate_ota(OtaSpec(topology="five_transistor"), name="nest")
        result = pipeline.run(lc.circuit, name="nest")
        top_before = {c.name for c in result.hierarchy.children}
        moves = nest_support_blocks(result.hierarchy, result.graph)
        if not moves:
            import pytest

            pytest.skip("quick model merged bias into the ota block")
        child, parent = moves[0]
        assert child not in {c.name for c in result.hierarchy.children}
        parent_node = result.hierarchy.find(parent)
        assert parent_node.find(child) is not None
        # Depth increased: sub-block inside sub-block.
        assert result.hierarchy.depth >= 4

    def test_shared_bias_stays_top_level(self):
        from repro.core.systems import BlockGraph, nest_support_blocks
        from repro.core.hierarchy import HierarchyNode, NodeKind
        from repro.graph.bipartite import CircuitGraph
        from repro.spice.flatten import flatten
        from repro.spice.parser import parse_netlist

        # One bias reference feeding two separate amplifier blocks.
        deck = """
rref vdd! nb 50k
mcr nb nb gnd! gnd! nmos
mt1 t1 nb gnd! gnd! nmos
ma1 o1 in1 t1 gnd! nmos
mt2 t2 nb gnd! gnd! nmos
ma2 o2 in2 t2 gnd! nmos
.end
"""
        graph = CircuitGraph.from_circuit(flatten(parse_netlist(deck)))
        root = HierarchyNode(name="sys", kind=NodeKind.SYSTEM)
        root.add(HierarchyNode(name="bias0", kind=NodeKind.SUBBLOCK,
                               block_class="bias", devices=("rref", "mcr")))
        root.add(HierarchyNode(name="ota0", kind=NodeKind.SUBBLOCK,
                               block_class="ota", devices=("mt1", "ma1")))
        root.add(HierarchyNode(name="ota1", kind=NodeKind.SUBBLOCK,
                               block_class="ota", devices=("mt2", "ma2")))
        moves = nest_support_blocks(root, graph)
        assert moves == []
        assert {c.name for c in root.children} == {"bias0", "ota0", "ota1"}
