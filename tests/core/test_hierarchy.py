"""Hierarchy tree structure and rendering."""

from repro.core.constraints import Constraint, ConstraintKind
from repro.core.hierarchy import HierarchyNode, NodeKind


def _tree() -> HierarchyNode:
    root = HierarchyNode(name="sys", kind=NodeKind.SYSTEM)
    ota = root.add(
        HierarchyNode(name="ota0", kind=NodeKind.SUBBLOCK, block_class="ota")
    )
    dp = ota.add(
        HierarchyNode(
            name="dp",
            kind=NodeKind.PRIMITIVE,
            block_class="DP-N",
            devices=("m1", "m2"),
            constraints=[
                Constraint(ConstraintKind.SYMMETRY, ("m1", "m2"), source="DP-N")
            ],
        )
    )
    ota.add(HierarchyNode(name="m3", kind=NodeKind.ELEMENT, devices=("m3",)))
    return root


class TestStructure:
    def test_walk_preorder(self):
        names = [n.name for n in _tree().walk()]
        assert names == ["sys", "ota0", "dp", "m3"]

    def test_find(self):
        tree = _tree()
        assert tree.find("dp").block_class == "DP-N"
        assert tree.find("missing") is None

    def test_subblocks_and_primitives(self):
        tree = _tree()
        assert [n.name for n in tree.subblocks()] == ["ota0"]
        assert [n.name for n in tree.primitives()] == ["dp"]

    def test_all_devices_transitive(self):
        assert _tree().all_devices() == {"m1", "m2", "m3"}

    def test_all_constraints(self):
        assert len(_tree().all_constraints()) == 1

    def test_depth(self):
        assert _tree().depth == 3
        assert HierarchyNode(name="x", kind=NodeKind.ELEMENT).depth == 1


class TestRendering:
    def test_render_contains_levels(self):
        text = _tree().render()
        assert "system: sys" in text
        assert "sub-block: ota0 [ota]" in text
        assert "primitive: dp [DP-N]" in text
        assert "element: m3" in text

    def test_render_indents_children(self):
        lines = _tree().render().splitlines()
        assert lines[1].startswith("  ")
        assert lines[2].startswith("    ")

    def test_render_device_counts(self):
        assert "2 dev" in _tree().render()

    def test_to_dict_roundtrip_shape(self):
        d = _tree().to_dict()
        assert d["kind"] == "system"
        assert d["children"][0]["class"] == "ota"
        assert d["children"][0]["children"][0]["devices"] == ["m1", "m2"]
        assert d["children"][0]["children"][0]["constraints"][0]["kind"] == "symmetry"


class TestEnsurePath:
    def test_creates_nested_chain(self):
        root = HierarchyNode(name="sys", kind=NodeKind.SYSTEM)
        leaf = root.ensure_path(("xrx0", "xlna"))
        assert leaf.name == "xlna"
        assert leaf.kind is NodeKind.SUBBLOCK
        assert root.child("xrx0").child("xlna") is leaf

    def test_reuses_existing_nodes(self):
        root = HierarchyNode(name="sys", kind=NodeKind.SYSTEM)
        first = root.ensure_path(("xrx0", "xlna"))
        again = root.ensure_path(("xrx0", "xlna"))
        assert again is first
        assert len(root.children) == 1
        sibling = root.ensure_path(("xrx0", "xmix"))
        assert sibling is not first
        assert len(root.child("xrx0").children) == 2

    def test_block_classes_applied_per_joined_path(self):
        root = HierarchyNode(name="sys", kind=NodeKind.SYSTEM)
        classes = {"xrx0": "receiver", "xrx0/xlna": "lna"}
        leaf = root.ensure_path(("xrx0", "xlna"), classes)
        assert root.child("xrx0").block_class == "receiver"
        assert leaf.block_class == "lna"

    def test_empty_path_returns_self(self):
        root = HierarchyNode(name="sys", kind=NodeKind.SYSTEM)
        assert root.ensure_path(()) is root
        assert root.children == []

    def test_child_is_shallow(self):
        root = HierarchyNode(name="sys", kind=NodeKind.SYSTEM)
        root.ensure_path(("a", "b"))
        assert root.child("a") is not None
        assert root.child("b") is None  # depth-2 node: find() sees it
        assert root.find("b") is not None
