"""Postprocessing I and II with hand-built annotations.

These tests construct annotations directly (no trained model needed) so
every heuristic is exercised deterministically.
"""

import numpy as np
import pytest

from repro.core.annotator import Annotation
from repro.core.postprocess import apply_port_rules, postprocess_ccc
from repro.graph.bipartite import CircuitGraph
from repro.primitives.library import extended_library
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist

LIB = extended_library()


def _graph(deck: str) -> CircuitGraph:
    return CircuitGraph.from_circuit(flatten(parse_netlist(deck)))


def _annotation(graph, class_names, assignments, noise=None):
    """Build an annotation with near-one-hot probabilities.

    ``assignments`` maps device/net name → class id; unnamed vertices
    get class 0 with low confidence.  ``noise`` optionally overrides
    specific names with a different predicted class (high confidence).
    """
    n = graph.n_vertices
    n_classes = len(class_names)
    probabilities = np.full((n, n_classes), 0.1)
    for v in range(n):
        name = graph.vertex_name(v)
        cls = assignments.get(name, 0)
        if noise and name in noise:
            cls = noise[name]
        probabilities[v, cls] = 0.9
    probabilities /= probabilities.sum(axis=1, keepdims=True)
    return Annotation(
        graph=graph,
        class_names=class_names,
        vertex_classes=probabilities.argmax(axis=1).astype(np.int64),
        probabilities=probabilities,
    )


OTA_DECK = """
* 5t ota + bias reference
r1 vdd! vbn 50k
mcr vbn vbn gnd! gnd! nmos
mtail tail vbn gnd! gnd! nmos
md1 n1 vinp tail gnd! nmos
md2 vout vinn tail gnd! nmos
ml1 n1 n1 vdd! vdd! pmos
ml2 vout n1 vdd! vdd! pmos
.end
"""

OTA_TRUTH = {
    "r1": "bias", "mcr": "bias",
    "mtail": "ota", "md1": "ota", "md2": "ota", "ml1": "ota", "ml2": "ota",
}


class TestCccVote:
    def test_majority_fixes_single_error(self):
        graph = _graph(OTA_DECK)
        annotation = _annotation(
            graph,
            ("ota", "bias"),
            {name: (0 if cls == "ota" else 1) for name, cls in OTA_TRUTH.items()},
            noise={"md1": 1},  # one wrong device inside the big CCC
        )
        result = postprocess_ccc(annotation, LIB)
        assert result.annotation.element_classes["md1"] == "ota"

    def test_all_devices_take_ccc_class(self):
        graph = _graph(OTA_DECK)
        annotation = _annotation(
            graph,
            ("ota", "bias"),
            {name: (0 if cls == "ota" else 1) for name, cls in OTA_TRUTH.items()},
        )
        result = postprocess_ccc(annotation, LIB)
        for name, cls in OTA_TRUTH.items():
            assert result.annotation.element_classes[name] == cls

    def test_nets_inherit_adjacent_class(self):
        graph = _graph(OTA_DECK)
        annotation = _annotation(
            graph,
            ("ota", "bias"),
            {name: (0 if cls == "ota" else 1) for name, cls in OTA_TRUTH.items()},
        )
        result = postprocess_ccc(annotation, LIB)
        assert result.annotation.net_classes["vout"] == "ota"
        assert result.annotation.net_classes["tail"] == "ota"

    def test_primitives_annotated_per_ccc(self):
        graph = _graph(OTA_DECK)
        annotation = _annotation(graph, ("ota", "bias"), {})
        result = postprocess_ccc(annotation, LIB)
        all_matches = [
            m.primitive for ms in result.ccc_matches.values() for m in ms
        ]
        assert "DP-N" in all_matches
        assert "CM-P(2)" in all_matches


class TestMirrorJointVote:
    MIRROR_TREE_DECK = """
* reference + two mirror branches split across CCCs
r1 vdd! vbn 50k
mcr vbn vbn gnd! gnd! nmos
mb1 vbp vbn gnd! gnd! nmos
mp1 vbp vbp vdd! vdd! pmos
mb2 tap vbn gnd! gnd! nmos
mp2 tap tap vdd! vdd! pmos
.end
"""

    def test_branches_outvote_bad_reference(self):
        graph = _graph(self.MIRROR_TREE_DECK)
        annotation = _annotation(
            graph, ("ota", "bias"),
            {n: 1 for n in ("r1", "mcr", "mb1", "mp1", "mb2", "mp2")},
            noise={"r1": 0, "mcr": 0},  # the reference CCC misclassified
        )
        result = postprocess_ccc(annotation, LIB)
        assert result.annotation.element_classes["r1"] == "bias"
        assert result.annotation.element_classes["mcr"] == "bias"

    def test_reference_outvotes_bad_branch(self):
        graph = _graph(self.MIRROR_TREE_DECK)
        annotation = _annotation(
            graph, ("ota", "bias"),
            {n: 1 for n in ("r1", "mcr", "mb1", "mp1", "mb2", "mp2")},
            noise={"mb2": 0, "mp2": 0},  # one branch misclassified
        )
        result = postprocess_ccc(annotation, LIB)
        assert result.annotation.element_classes["mb2"] == "bias"
        assert result.annotation.element_classes["mp2"] == "bias"


class TestOrphanAbsorption:
    BUFFERED_DECK = """
* source-follower input buffer feeding a diff pair
mbuf vdd! vin inbuf gnd! nmos
mtail tail vbn gnd! gnd! nmos
md1 n1 inbuf tail gnd! nmos
md2 vout vinn tail gnd! nmos
ml1 n1 n1 vdd! vdd! pmos
ml2 vout n1 vdd! vdd! pmos
.end
"""

    def test_lone_buffer_absorbed_into_host(self):
        graph = _graph(self.BUFFERED_DECK)
        annotation = _annotation(
            graph, ("ota", "bias"),
            {n: 0 for n in ("mtail", "md1", "md2", "ml1", "ml2")},
            noise={"mbuf": 1},  # buffer misclassified as bias
        )
        result = postprocess_ccc(annotation, LIB)
        assert result.annotation.element_classes["mbuf"] == "ota"


class TestStandaloneSeparation:
    RF_CHAIN_DECK = """
* mixer-ish block followed by an inverter amp
mrf t1 rfin gnd! gnd! nmos
msw1 ifp lo t1 gnd! nmos
msw2 ifn lob t1 gnd! nmos
rl1 vdd! ifp 1k
rl2 vdd! ifn 1k
minv1 if2 ifp gnd! gnd! nmos
minv2 if2 ifp vdd! vdd! pmos
.end
"""

    def test_inverter_separated_in_rf_vocab(self):
        graph = _graph(self.RF_CHAIN_DECK)
        names = ("mrf", "msw1", "msw2", "rl1", "rl2")
        annotation = _annotation(
            graph, ("lna", "mixer", "osc"),
            {n: 1 for n in names} | {"minv1": 1, "minv2": 1},
        )
        result = postprocess_ccc(annotation, LIB)
        assert result.annotation.element_classes["minv1"] == "inv"
        assert result.annotation.element_classes["minv2"] == "inv"
        assert result.standalone

    def test_not_separated_in_ota_vocab(self):
        graph = _graph(self.RF_CHAIN_DECK)
        annotation = _annotation(graph, ("ota", "bias"), {})
        result = postprocess_ccc(annotation, LIB)
        classes = set(result.annotation.element_classes.values())
        assert "inv" not in classes


class TestBpfDetection:
    BPF_DECK = """
* cross-coupled pair + tank + rail-injecting input transistors
mcc1 outp outn t gnd! nmos
mcc2 outn outp t gnd! nmos
mt t vb gnd! gnd! nmos
l1 outp outn 1n
c1 outp outn 1p
min1 outp rfin gnd! gnd! nmos
min2 outn rfin gnd! gnd! nmos
mdrv rfin drive gnd! gnd! nmos
.end
"""

    def test_osc_with_inputs_becomes_bpf(self):
        graph = _graph(self.BPF_DECK)
        annotation = _annotation(
            graph, ("lna", "mixer", "osc"),
            {n: 2 for n in ("mcc1", "mcc2", "mt", "l1", "c1", "min1", "min2")}
            | {"mdrv": 0},
        )
        result = postprocess_ccc(annotation, LIB)
        assert result.annotation.element_classes["mcc1"] == "bpf"
        assert "bpf" in result.annotation.extra_classes

    ILO_DECK = """
* injection-locked oscillator: injection device across the tank
mcc1 outp outn t gnd! nmos
mcc2 outn outp t gnd! nmos
mt t vb gnd! gnd! nmos
l1 outp outn 1n
c1 outp outn 1p
minj outp ref outn gnd! nmos
mdrv ref drive gnd! gnd! nmos
.end
"""

    def test_injection_locked_osc_stays_osc(self):
        graph = _graph(self.ILO_DECK)
        annotation = _annotation(
            graph, ("lna", "mixer", "osc"),
            {n: 2 for n in ("mcc1", "mcc2", "mt", "l1", "c1", "minj")}
            | {"mdrv": 2},
        )
        result = postprocess_ccc(annotation, LIB)
        assert result.annotation.element_classes["mcc1"] == "osc"

    def test_bpf_detection_can_be_disabled(self):
        graph = _graph(self.BPF_DECK)
        annotation = _annotation(
            graph, ("lna", "mixer", "osc"),
            {n: 2 for n in ("mcc1", "mcc2", "mt", "l1", "c1", "min1", "min2", "mdrv")},
        )
        result = postprocess_ccc(annotation, LIB, detect_bpf=False)
        assert result.annotation.element_classes["mcc1"] == "osc"


RECEIVER_DECK = """
* lna (cg) -> mixer <- external lo
mlna lnaout vb_lna rfin gnd! nmos
llna rfin gnd! 1n
rlna vdd! lnaout 600
mrf t1 lnaout gnd! gnd! nmos
msw1 ifout lo t1 gnd! nmos
msw2 ifn lob t1 gnd! nmos
rl1 vdd! ifout 1k
rl2 vdd! ifn 1k
.end
"""


class TestPortRules:
    def _post1(self, noise=None):
        graph = _graph(RECEIVER_DECK)
        lna = {"mlna": 0, "llna": 0, "rlna": 0}
        mixer = {n: 1 for n in ("mrf", "msw1", "msw2", "rl1", "rl2")}
        annotation = _annotation(
            graph, ("lna", "mixer", "osc"), lna | mixer, noise=noise
        )
        return postprocess_ccc(annotation, LIB)

    def test_antenna_rule_fixes_lna(self):
        result = self._post1(noise={"mlna": 2, "llna": 2, "rlna": 2})
        fixed = apply_port_rules(result, {"rfin": "antenna"})
        assert fixed.annotation.element_classes["mlna"] == "lna"

    def test_oscillating_rule_fixes_mixer(self):
        result = self._post1(
            noise={n: 2 for n in ("mrf", "msw1", "msw2", "rl1", "rl2")}
        )
        fixed = apply_port_rules(result, {"lo": "oscillating"})
        assert fixed.annotation.element_classes["msw1"] == "mixer"

    def test_oscillating_rule_drive_side_becomes_osc(self):
        deck = """
mcc1 lo lob t gnd! nmos
mcc2 lob lo t gnd! nmos
mt t vb gnd! gnd! nmos
msw out lo src gnd! nmos
msrc src vin gnd! gnd! nmos
.end
"""
        graph = _graph(deck)
        annotation = _annotation(
            graph, ("lna", "mixer", "osc"),
            {"mcc1": 1, "mcc2": 1, "mt": 1, "msw": 1, "msrc": 1},
        )
        result = postprocess_ccc(annotation, LIB, detect_bpf=False)
        fixed = apply_port_rules(result, {"lo": "oscillating"})
        assert fixed.annotation.element_classes["mcc1"] == "osc"
        assert fixed.annotation.element_classes["msw"] == "mixer"

    def test_unknown_net_ignored(self):
        result = self._post1()
        fixed = apply_port_rules(result, {"nosuchnet": "antenna"})
        assert fixed.annotation.element_classes == result.annotation.element_classes

    def test_noop_outside_rf_vocab(self):
        graph = _graph(OTA_DECK)
        annotation = _annotation(graph, ("ota", "bias"), {})
        result = postprocess_ccc(annotation, LIB)
        fixed = apply_port_rules(result, {"vinp": "antenna"})
        assert fixed.annotation.element_classes == result.annotation.element_classes

    def test_standalone_protected_from_port_rules(self):
        deck = """
mcc1 lo lob t gnd! nmos
mcc2 lob lo t gnd! nmos
mt t vb gnd! gnd! nmos
mbuf1 vdd! lo lobuf gnd! nmos
mbuf2 gnd! lo lobuf vdd! pmos
msw out lobuf src gnd! nmos
msrc src vin gnd! gnd! nmos
.end
"""
        graph = _graph(deck)
        annotation = _annotation(
            graph, ("lna", "mixer", "osc"),
            {"mcc1": 2, "mcc2": 2, "mt": 2, "mbuf1": 2, "mbuf2": 2,
             "msw": 1, "msrc": 1},
        )
        result = postprocess_ccc(annotation, LIB, detect_bpf=False)
        assert result.annotation.element_classes["mbuf1"] == "buf"
        fixed = apply_port_rules(
            result, {"lo": "oscillating", "lobuf": "oscillating"}
        )
        # The buffer drives lobuf but keeps its standalone class.
        assert fixed.annotation.element_classes["mbuf1"] == "buf"
        assert fixed.annotation.element_classes["msw"] == "mixer"
