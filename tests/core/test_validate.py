"""Constraint-vs-netlist validation."""

import pytest

from repro.core.constraints import Constraint, ConstraintKind, ConstraintSet
from repro.core.validate import validate_constraints
from repro.spice.netlist import Circuit, DeviceKind, make_mos, make_passive


def _circuit(w2=2e-6):
    c = Circuit(name="t")
    c.add(make_mos("m1", DeviceKind.NMOS, "a", "g", "s", w=2e-6, l=100e-9))
    c.add(make_mos("m2", DeviceKind.NMOS, "b", "g", "s", w=w2, l=100e-9))
    c.add(make_passive("c1", DeviceKind.CAPACITOR, "a", "x", 1e-12))
    c.add(make_passive("c2", DeviceKind.CAPACITOR, "b", "x", 1e-12))
    return c


def _set(*constraints):
    s = ConstraintSet()
    s.extend(list(constraints))
    return s


class TestMatching:
    def test_identical_devices_pass(self):
        violations = validate_constraints(
            _set(Constraint(ConstraintKind.MATCHING, ("m1", "m2"))), _circuit()
        )
        assert violations == []

    def test_width_mismatch_flagged(self):
        violations = validate_constraints(
            _set(Constraint(ConstraintKind.MATCHING, ("m1", "m2"))),
            _circuit(w2=4e-6),
        )
        assert len(violations) == 1
        assert "differ" in str(violations[0])

    def test_matched_capacitors(self):
        violations = validate_constraints(
            _set(Constraint(ConstraintKind.MATCHING, ("c1", "c2"))), _circuit()
        )
        assert violations == []

    def test_kind_mismatch_flagged(self):
        violations = validate_constraints(
            _set(Constraint(ConstraintKind.MATCHING, ("m1", "c1"))), _circuit()
        )
        assert len(violations) == 1

    def test_common_centroid_checked_like_matching(self):
        violations = validate_constraints(
            _set(Constraint(ConstraintKind.COMMON_CENTROID, ("m1", "m2"))),
            _circuit(w2=8e-6),
        )
        assert len(violations) == 1


class TestSymmetry:
    def test_symmetric_pair_pass(self):
        violations = validate_constraints(
            _set(Constraint(ConstraintKind.SYMMETRY, ("m1", "m2"))), _circuit()
        )
        assert violations == []

    def test_symmetric_pair_mismatch(self):
        violations = validate_constraints(
            _set(Constraint(ConstraintKind.SYMMETRY, ("m1", "m2"))),
            _circuit(w2=4e-6),
        )
        assert len(violations) == 1
        assert "symmetric pair" in violations[0].message

    def test_odd_member_on_axis_not_compared(self):
        violations = validate_constraints(
            _set(Constraint(ConstraintKind.SYMMETRY, ("m1", "m2", "c1"))),
            _circuit(),
        )
        assert violations == []


class TestSkipping:
    def test_block_level_constraints_skipped(self):
        violations = validate_constraints(
            _set(Constraint(ConstraintKind.SYMMETRY, ("ota0",))), _circuit()
        )
        assert violations == []

    def test_unknown_members_skipped(self):
        violations = validate_constraints(
            _set(Constraint(ConstraintKind.MATCHING, ("ghost1", "ghost2"))),
            _circuit(),
        )
        assert violations == []

    def test_guard_ring_not_geometry_checked(self):
        violations = validate_constraints(
            _set(Constraint(ConstraintKind.GUARD_RING, ("m1", "m2"))),
            _circuit(w2=9e-6),
        )
        assert violations == []


class TestPipelineOutputValidates:
    def test_generated_circuits_satisfy_their_constraints(
        self, quick_ota_annotator
    ):
        """Recognition on our generators yields zero violations — the
        generators build matched structures with matched geometry."""
        from repro.core.pipeline import GanaPipeline
        from repro.datasets.ota import OtaSpec, generate_ota

        pipeline = GanaPipeline(annotator=quick_ota_annotator)
        lc = generate_ota(OtaSpec(topology="telescopic"))
        result = pipeline.run(lc.circuit, name=lc.name)
        violations = validate_constraints(result.constraints, lc.circuit)
        assert violations == []
