"""Command-line interface behaviour (library-level, no subprocess)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.datasets.ota import OtaSpec, generate_ota
from repro.spice.writer import write_circuit


@pytest.fixture()
def deck_path(tmp_path):
    lc = generate_ota(OtaSpec(topology="five_transistor"), name="cli_case")
    path = tmp_path / "cli_case.sp"
    path.write_text(write_circuit(lc.circuit))
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_annotate_args(self):
        args = build_parser().parse_args(
            ["annotate", "x.sp", "--task", "rf", "--port", "rfin=antenna"]
        )
        assert args.task == "rf"
        assert args.port == ["rfin=antenna"]

    def test_unknown_task_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["annotate", "x.sp", "--task", "dsp"])


class TestPrimitivesCommand:
    def test_lists_21(self, capsys):
        assert main(["primitives"]) == 0
        out = capsys.readouterr().out
        assert "21 primitives" in out
        assert "DP-N" in out

    def test_extended_lists_23(self, capsys):
        assert main(["primitives", "--extended"]) == 0
        out = capsys.readouterr().out
        assert "23 primitives" in out
        assert "BUF" in out


class TestDatasetsCommand:
    def test_writes_decks_and_labels(self, tmp_path, capsys):
        out_dir = tmp_path / "decks"
        assert (
            main(
                ["datasets", "--task", "ota", "-n", "3", "--out-dir", str(out_dir)]
            )
            == 0
        )
        decks = list(out_dir.glob("*.sp"))
        labels = list(out_dir.glob("*.labels.json"))
        assert len(decks) == 3
        assert len(labels) == 3
        payload = json.loads(labels[0].read_text())
        assert set(payload.values()) <= {"ota", "bias"}


class TestTrainAndAnnotate:
    def test_train_then_annotate(self, tmp_path, deck_path, capsys, monkeypatch):
        # Shrink quick training so the CLI test stays fast.
        import repro.datasets.synth as synth

        original = synth.pretrain_annotator

        def fast(task, quick=True, seed=0, **kwargs):
            return original(task, quick=quick, seed=seed, train_size=16)

        monkeypatch.setattr(synth, "pretrain_annotator", fast)
        import repro.cli as cli_module

        model_path = tmp_path / "model.npz"
        assert main(["train", "--task", "ota", "--quick", "--out", str(model_path)]) == 0
        assert model_path.exists()

        assert (
            main(
                [
                    "annotate",
                    str(deck_path),
                    "--task",
                    "ota",
                    "--model",
                    str(model_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "hierarchy" in out
        assert "constraints" in out

    def test_annotate_json_output(self, tmp_path, deck_path, capsys, monkeypatch):
        import repro.datasets.synth as synth

        original = synth.pretrain_annotator
        monkeypatch.setattr(
            synth,
            "pretrain_annotator",
            lambda task, quick=True, seed=0, **kw: original(
                task, quick=quick, seed=seed, train_size=16
            ),
        )
        model_path = tmp_path / "m.npz"
        main(["train", "--task", "ota", "--quick", "--out", str(model_path)])
        capsys.readouterr()  # drop the train command's output
        assert (
            main(
                [
                    "annotate",
                    str(deck_path),
                    "--task",
                    "ota",
                    "--model",
                    str(model_path),
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert "devices" in payload and "hierarchy" in payload


class TestExportDir:
    def test_exports_written(self, tmp_path, deck_path, capsys, monkeypatch):
        import repro.datasets.synth as synth

        original = synth.pretrain_annotator
        monkeypatch.setattr(
            synth,
            "pretrain_annotator",
            lambda task, quick=True, seed=0, **kw: original(
                task, quick=quick, seed=seed, train_size=16
            ),
        )
        model_path = tmp_path / "m.npz"
        main(["train", "--task", "ota", "--quick", "--out", str(model_path)])
        out_dir = tmp_path / "exports"
        assert (
            main(
                [
                    "annotate", str(deck_path), "--task", "ota",
                    "--model", str(model_path),
                    "--export-dir", str(out_dir),
                ]
            )
            == 0
        )
        assert (out_dir / "constraints.json").exists()
        assert (out_dir / "hierarchy.json").exists()
        assert (out_dir / "hierarchy.dot").exists()
        assert (out_dir / "graph.dot").exists()
        payload = json.loads((out_dir / "constraints.json").read_text())
        assert isinstance(payload, list)


class TestStagedFlags:
    """ISSUE 4: --stop-after / --resume-from / --save-artifacts /
    --artifact-cache on the annotate subcommand."""

    @pytest.fixture()
    def quick_model(self, tmp_path, monkeypatch):
        import repro.datasets.synth as synth

        original = synth.pretrain_annotator
        monkeypatch.setattr(
            synth,
            "pretrain_annotator",
            lambda task, quick=True, seed=0, **kw: original(
                task, quick=quick, seed=seed, train_size=16
            ),
        )
        model_path = tmp_path / "m.npz"
        main(["train", "--task", "ota", "--quick", "--out", str(model_path)])
        return model_path

    def test_stop_after_choices_are_canonical(self):
        from repro.core.stages import STAGE_ORDER

        for name in (s.value for s in STAGE_ORDER):
            args = build_parser().parse_args(
                ["annotate", "x.sp", "--stop-after", name]
            )
            assert args.stop_after == name
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["annotate", "x.sp", "--stop-after", "not-a-stage"]
            )

    def test_stop_save_resume_round_trip(
        self, tmp_path, deck_path, quick_model, capsys
    ):
        art_dir = tmp_path / "artifacts"
        code = main(
            ["annotate", str(deck_path), "--task", "ota",
             "--model", str(quick_model),
             "--stop-after", "graph", "--save-artifacts", str(art_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stopped after stage 'graph'" in out
        saved = sorted(p.name for p in art_dir.glob("*.artifact.pkl"))
        assert saved == [
            "0-parse.artifact.pkl",
            "1-preprocess.artifact.pkl",
            "2-graph.artifact.pkl",
        ]

        # Resume without re-giving the netlist: the run completes.
        code = main(
            ["annotate", "--task", "ota", "--model", str(quick_model),
             "--resume-from", str(art_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hierarchy" in out
        assert "constraints" in out

    def test_artifact_cache_flag_populates_cache(
        self, tmp_path, deck_path, quick_model, capsys
    ):
        cache_dir = tmp_path / "artifact-cache"
        for _ in range(2):  # cold run stores, warm run loads
            assert (
                main(
                    ["annotate", str(deck_path), "--task", "ota",
                     "--model", str(quick_model),
                     "--artifact-cache", str(cache_dir)]
                )
                == 0
            )
        capsys.readouterr()
        assert list(cache_dir.glob("*.pkl"))

    def test_staged_flags_reject_batches(self, deck_path, capsys):
        code = main(
            ["annotate", str(deck_path), str(deck_path),
             "--stop-after", "graph"]
        )
        assert code == 2
        assert "single netlist" in capsys.readouterr().err

    def test_no_netlist_and_no_resume_rejected(self, capsys):
        code = main(["annotate"])
        assert code == 2
        assert "resume-from" in capsys.readouterr().err


class TestErrorHandling:
    """ISSUE 2 satellite: GanaError → one-line diagnostic, non-zero exit."""

    BAD_DECK = "* corrupted\nm1 n1 inp vss nmos\n.end\n"

    @pytest.fixture()
    def bad_path(self, tmp_path):
        path = tmp_path / "bad.sp"
        path.write_text(self.BAD_DECK)
        return path

    @pytest.fixture()
    def quick_model(self, tmp_path, monkeypatch):
        import repro.datasets.synth as synth

        original = synth.pretrain_annotator
        monkeypatch.setattr(
            synth,
            "pretrain_annotator",
            lambda task, quick=True, seed=0, **kw: original(
                task, quick=quick, seed=seed, train_size=16
            ),
        )
        model_path = tmp_path / "m.npz"
        main(["train", "--task", "ota", "--quick", "--out", str(model_path)])
        return model_path

    def test_strict_error_is_one_line_with_line_number(
        self, bad_path, quick_model, capsys
    ):
        code = main(
            ["annotate", str(bad_path), "--task", "ota",
             "--model", str(quick_model)]
        )
        assert code == 1
        err = capsys.readouterr().err
        error_lines = [l for l in err.splitlines() if l.startswith("error:")]
        assert len(error_lines) == 1
        assert "SpiceSyntaxError" in error_lines[0]
        assert "line 2" in error_lines[0]
        assert "hint" in error_lines[0]

    def test_lenient_recovers_and_reports(
        self, bad_path, quick_model, capsys
    ):
        code = main(
            ["annotate", str(bad_path), "--task", "ota",
             "--model", str(quick_model), "--lenient"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "line 2" in err  # diagnostic surfaced on stderr

    def test_strict_and_lenient_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["annotate", "x.sp", "--strict", "--lenient"]
            )

    def test_lenient_json_carries_diagnostics(
        self, bad_path, quick_model, capsys
    ):
        code = main(
            ["annotate", str(bad_path), "--task", "ota",
             "--model", str(quick_model), "--lenient", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"]
        assert payload["diagnostics"][0]["line"] == 2

    def test_lenient_batch_isolates_failures(
        self, tmp_path, deck_path, quick_model, capsys
    ):
        # A >64-deep hierarchy trips flatten's MAX_DEPTH guard, which
        # raises even in lenient mode — a genuine per-deck failure.
        deep = "".join(
            f".subckt c{i} p\nx1 p c{i + 1}\n.ends\n" for i in range(70)
        ) + ".subckt c70 p\nr1 p 0 1k\n.ends\nx0 n c0\n.end\n"
        poisoned = tmp_path / "deep.sp"
        poisoned.write_text(deep)
        code = main(
            ["annotate", str(deck_path), str(poisoned), "--task", "ota",
             "--model", str(quick_model), "--lenient", "--workers", "1"]
        )
        assert code == 1  # one deck failed → non-zero exit
        captured = capsys.readouterr()
        assert "failed in stage" in captured.err
        assert "deep" in captured.err
        # The healthy deck was still annotated.
        assert str(deck_path) in captured.out
