"""Command-line interface behaviour (library-level, no subprocess)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.datasets.ota import OtaSpec, generate_ota
from repro.spice.writer import write_circuit


@pytest.fixture()
def deck_path(tmp_path):
    lc = generate_ota(OtaSpec(topology="five_transistor"), name="cli_case")
    path = tmp_path / "cli_case.sp"
    path.write_text(write_circuit(lc.circuit))
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_annotate_args(self):
        args = build_parser().parse_args(
            ["annotate", "x.sp", "--task", "rf", "--port", "rfin=antenna"]
        )
        assert args.task == "rf"
        assert args.port == ["rfin=antenna"]

    def test_unknown_task_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["annotate", "x.sp", "--task", "dsp"])


class TestPrimitivesCommand:
    def test_lists_21(self, capsys):
        assert main(["primitives"]) == 0
        out = capsys.readouterr().out
        assert "21 primitives" in out
        assert "DP-N" in out

    def test_extended_lists_23(self, capsys):
        assert main(["primitives", "--extended"]) == 0
        out = capsys.readouterr().out
        assert "23 primitives" in out
        assert "BUF" in out


class TestDatasetsCommand:
    def test_writes_decks_and_labels(self, tmp_path, capsys):
        out_dir = tmp_path / "decks"
        assert (
            main(
                ["datasets", "--task", "ota", "-n", "3", "--out-dir", str(out_dir)]
            )
            == 0
        )
        decks = list(out_dir.glob("*.sp"))
        labels = list(out_dir.glob("*.labels.json"))
        assert len(decks) == 3
        assert len(labels) == 3
        payload = json.loads(labels[0].read_text())
        assert set(payload.values()) <= {"ota", "bias"}


class TestTrainAndAnnotate:
    def test_train_then_annotate(self, tmp_path, deck_path, capsys, monkeypatch):
        # Shrink quick training so the CLI test stays fast.
        import repro.datasets.synth as synth

        original = synth.pretrain_annotator

        def fast(task, quick=True, seed=0, **kwargs):
            return original(task, quick=quick, seed=seed, train_size=16)

        monkeypatch.setattr(synth, "pretrain_annotator", fast)
        import repro.cli as cli_module

        model_path = tmp_path / "model.npz"
        assert main(["train", "--task", "ota", "--quick", "--out", str(model_path)]) == 0
        assert model_path.exists()

        assert (
            main(
                [
                    "annotate",
                    str(deck_path),
                    "--task",
                    "ota",
                    "--model",
                    str(model_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "hierarchy" in out
        assert "constraints" in out

    def test_annotate_json_output(self, tmp_path, deck_path, capsys, monkeypatch):
        import repro.datasets.synth as synth

        original = synth.pretrain_annotator
        monkeypatch.setattr(
            synth,
            "pretrain_annotator",
            lambda task, quick=True, seed=0, **kw: original(
                task, quick=quick, seed=seed, train_size=16
            ),
        )
        model_path = tmp_path / "m.npz"
        main(["train", "--task", "ota", "--quick", "--out", str(model_path)])
        capsys.readouterr()  # drop the train command's output
        assert (
            main(
                [
                    "annotate",
                    str(deck_path),
                    "--task",
                    "ota",
                    "--model",
                    str(model_path),
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert "devices" in payload and "hierarchy" in payload


class TestExportDir:
    def test_exports_written(self, tmp_path, deck_path, capsys, monkeypatch):
        import repro.datasets.synth as synth

        original = synth.pretrain_annotator
        monkeypatch.setattr(
            synth,
            "pretrain_annotator",
            lambda task, quick=True, seed=0, **kw: original(
                task, quick=quick, seed=seed, train_size=16
            ),
        )
        model_path = tmp_path / "m.npz"
        main(["train", "--task", "ota", "--quick", "--out", str(model_path)])
        out_dir = tmp_path / "exports"
        assert (
            main(
                [
                    "annotate", str(deck_path), "--task", "ota",
                    "--model", str(model_path),
                    "--export-dir", str(out_dir),
                ]
            )
            == 0
        )
        assert (out_dir / "constraints.json").exists()
        assert (out_dir / "hierarchy.json").exists()
        assert (out_dir / "hierarchy.dot").exists()
        assert (out_dir / "graph.dot").exists()
        payload = json.loads((out_dir / "constraints.json").read_text())
        assert isinstance(payload, list)
