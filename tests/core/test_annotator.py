"""Annotation container and GCN annotator wiring."""

import numpy as np
import pytest

from repro.core.annotator import Annotation, GcnAnnotator
from repro.gcn.model import GCNConfig, GCNModel


def _annotation(diff_ota_graph, classes=("ota", "bias")) -> Annotation:
    n = diff_ota_graph.n_vertices
    vertex_classes = np.zeros(n, dtype=np.int64)
    vertex_classes[0] = 1
    return Annotation(
        graph=diff_ota_graph,
        class_names=classes,
        vertex_classes=vertex_classes,
    )


class TestAnnotation:
    def test_element_classes(self, diff_ota_graph):
        ann = _annotation(diff_ota_graph)
        classes = ann.element_classes
        assert classes["m0"] == "bias"
        assert classes["m1"] == "ota"

    def test_net_classes(self, diff_ota_graph):
        ann = _annotation(diff_ota_graph)
        assert set(ann.net_classes.values()) == {"ota"}

    def test_accuracy_against_truth(self, diff_ota_graph):
        ann = _annotation(diff_ota_graph)
        truth = {"m0": "bias", "m1": "ota", "m2": "bias"}
        assert ann.accuracy(truth) == pytest.approx(2 / 3)

    def test_accuracy_devices_only(self, diff_ota_graph):
        ann = _annotation(diff_ota_graph)
        truth = {"m0": "bias", "voutp": "bias"}  # net wrong, excluded
        assert ann.accuracy(truth, devices_only=True) == 1.0

    def test_accuracy_empty_truth(self, diff_ota_graph):
        assert _annotation(diff_ota_graph).accuracy({}) == 1.0

    def test_extra_classes(self, diff_ota_graph):
        ann = _annotation(diff_ota_graph)
        cls_id = ann.class_id("bpf", create=True)
        assert ann.class_name(cls_id) == "bpf"
        assert "bpf" in ann.all_class_names
        with pytest.raises(KeyError):
            ann.class_id("nope")

    def test_unclassified_renders_question_mark(self, diff_ota_graph):
        ann = _annotation(diff_ota_graph)
        assert ann.class_name(-1) == "?"

    def test_copy_independent(self, diff_ota_graph):
        ann = _annotation(diff_ota_graph)
        twin = ann.copy()
        twin.vertex_classes[:] = 0
        assert ann.vertex_classes[0] == 1


class TestGcnAnnotator:
    def _model(self, n_classes=2):
        return GCNModel(
            GCNConfig(
                n_classes=n_classes, filter_size=4, channels=(4, 4),
                fc_size=8, dropout=0.0, batch_norm=False,
            )
        )

    def test_class_count_validated(self):
        with pytest.raises(ValueError):
            GcnAnnotator(model=self._model(2), class_names=("a", "b", "c"))

    def test_annotate_produces_probabilities(self, diff_ota_graph):
        annotator = GcnAnnotator(model=self._model(), class_names=("ota", "bias"))
        ann = annotator.annotate(diff_ota_graph)
        assert ann.probabilities.shape == (diff_ota_graph.n_vertices, 2)
        np.testing.assert_allclose(ann.probabilities.sum(axis=1), 1.0)

    def test_annotate_classes_consistent_with_probs(self, diff_ota_graph):
        annotator = GcnAnnotator(model=self._model(), class_names=("ota", "bias"))
        ann = annotator.annotate(diff_ota_graph)
        np.testing.assert_array_equal(
            ann.vertex_classes, ann.probabilities.argmax(axis=1)
        )
