"""End-to-end pipeline mechanics (with the session-scoped annotator)."""

import pytest

from repro.core.hierarchy import NodeKind
from repro.core.pipeline import GanaPipeline
from repro.datasets.ota import OtaSpec, generate_ota
from repro.spice.writer import write_circuit


@pytest.fixture(scope="module")
def pipeline(quick_ota_annotator):
    return GanaPipeline(annotator=quick_ota_annotator)


@pytest.fixture(scope="module")
def ota_case():
    return generate_ota(OtaSpec(topology="five_transistor"), name="case")


class TestRun:
    def test_accepts_spice_text(self, pipeline, ota_case):
        text = write_circuit(ota_case.circuit)
        result = pipeline.run(text)
        assert result.graph.n_elements > 0

    def test_accepts_circuit_object(self, pipeline, ota_case):
        result = pipeline.run(ota_case.circuit)
        assert result.graph.n_elements == len(ota_case.circuit.devices)

    def test_timings_cover_stages(self, pipeline, ota_case):
        result = pipeline.run(ota_case.circuit)
        assert set(result.timings) == {
            "preprocess", "graph", "gcn", "post1", "post2", "hierarchy",
        }
        assert all(v >= 0 for v in result.timings.values())

    def test_accuracies_keys(self, pipeline, ota_case):
        result = pipeline.run(ota_case.circuit)
        accs = result.accuracies(ota_case.truth(result.graph))
        assert set(accs) == {"gcn", "post1", "post2"}
        assert accs["post1"] >= 0.5  # quick model + Post-I does decently

    def test_final_annotation_is_post2(self, pipeline, ota_case):
        result = pipeline.run(ota_case.circuit)
        assert result.annotation is result.post2.annotation


class TestHierarchyBuild:
    def test_root_is_system(self, pipeline, ota_case):
        result = pipeline.run(ota_case.circuit, name="mysys")
        assert result.hierarchy.kind is NodeKind.SYSTEM
        assert result.hierarchy.name == "mysys"

    def test_subblocks_have_classes(self, pipeline, ota_case):
        result = pipeline.run(ota_case.circuit)
        for block in result.hierarchy.subblocks():
            assert block.block_class in ("ota", "bias")

    def test_all_devices_in_tree(self, pipeline, ota_case):
        result = pipeline.run(ota_case.circuit)
        tree_devices = result.hierarchy.all_devices()
        graph_devices = {d.name for d in result.graph.elements}
        assert tree_devices == graph_devices

    def test_primitive_nodes_present(self, pipeline, ota_case):
        result = pipeline.run(ota_case.circuit)
        primitives = result.hierarchy.primitives()
        assert any(p.block_class == "DP-N" for p in primitives)

    def test_constraints_collected(self, pipeline, ota_case):
        result = pipeline.run(ota_case.circuit)
        assert len(result.constraints) > 0

    def test_symmetry_axis_merged_per_block(self, pipeline, ota_case):
        from repro.core.constraints import ConstraintKind

        result = pipeline.run(ota_case.circuit)
        ota_blocks = [
            b for b in result.hierarchy.subblocks() if b.block_class == "ota"
        ]
        assert ota_blocks
        sym = [
            c
            for c in ota_blocks[0].constraints
            if c.kind is ConstraintKind.SYMMETRY and len(c.members) >= 2
        ]
        assert sym  # the DP symmetry reached the block level

    def test_render_runs(self, pipeline, ota_case):
        result = pipeline.run(ota_case.circuit)
        text = result.hierarchy.render()
        assert "system" in text


class TestPreprocessIntegration:
    def test_dummies_removed_before_recognition(self, pipeline, ota_case):
        from repro.spice.netlist import DeviceKind, make_mos

        circuit = ota_case.circuit
        circuit.devices.append(
            make_mos("mdummy", DeviceKind.NMOS, "x", "gnd!", "gnd!")
        )
        try:
            result = pipeline.run(circuit)
            assert "mdummy" in result.preprocess_report.removed_names
            assert "mdummy" not in {d.name for d in result.graph.elements}
        finally:
            circuit.devices.pop()
