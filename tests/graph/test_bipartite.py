"""Bipartite graph construction and the 3-bit edge labels (Sec. II-C)."""

import numpy as np
import pytest

from repro.exceptions import GraphConstructionError
from repro.graph.bipartite import (
    DRAIN_BIT,
    GATE_BIT,
    SOURCE_BIT,
    CircuitGraph,
    Edge,
)
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist
from tests.conftest import CURRENT_MIRROR_DECK, HIERARCHICAL_DECK


class TestConstruction:
    def test_element_and_net_counts(self, current_mirror_graph):
        # Two transistors; nets d1, d2, s (bodies excluded).
        assert current_mirror_graph.n_elements == 2
        assert current_mirror_graph.n_nets == 3
        assert current_mirror_graph.n_vertices == 5

    def test_rejects_unflattened_circuit(self):
        netlist = parse_netlist(HIERARCHICAL_DECK)
        with pytest.raises(GraphConstructionError):
            CircuitGraph.from_circuit(netlist.top)

    def test_sources_excluded_by_default(self):
        deck = "vdd vdd! 0 dc 1.8\nr1 a vdd! 1k\n.end\n"
        graph = CircuitGraph.from_circuit(flatten(parse_netlist(deck)))
        assert graph.n_elements == 1

    def test_sources_included_on_request(self):
        deck = "vdd vdd! 0 dc 1.8\nr1 a vdd! 1k\n.end\n"
        flat = flatten(parse_netlist(deck))
        graph = CircuitGraph.from_circuit(flat, include_sources=True)
        assert graph.n_elements == 2

    def test_unconnected_port_gets_net_vertex(self):
        deck = "r1 a b 1k\n.end\n"
        flat = flatten(parse_netlist(deck))
        flat.ports = ("a", "b", "floating")
        graph = CircuitGraph.from_circuit(flat)
        assert "floating" in graph.net_index

    def test_duplicate_device_names_rejected(self, current_mirror_graph):
        circuit = current_mirror_graph.circuit
        circuit.devices.append(circuit.devices[0])
        with pytest.raises(GraphConstructionError):
            CircuitGraph.from_circuit(circuit)
        circuit.devices.pop()


class TestEdgeLabels:
    def test_fig2_current_mirror_labels(self, current_mirror_graph):
        """Reproduce the exact labels of Fig. 2(b)."""
        g = current_mirror_graph
        m0, m1 = g.element_index["m0"], g.element_index["m1"]
        d1, d2, s = (g.net_index[n] for n in ("d1", "d2", "s"))
        # M0 is diode-connected at d1: gate+drain on one edge = 101.
        assert g.edge_label(m0, d1) == GATE_BIT | DRAIN_BIT
        assert g.edge_label(m0, s) == SOURCE_BIT
        # M1: gate at d1 (100), drain at d2 (001), source at s (010).
        assert g.edge_label(m1, d1) == GATE_BIT
        assert g.edge_label(m1, d2) == DRAIN_BIT
        assert g.edge_label(m1, s) == SOURCE_BIT

    def test_passive_edges_unlabeled(self):
        deck = "r1 a b 1k\n.end\n"
        graph = CircuitGraph.from_circuit(flatten(parse_netlist(deck)))
        assert all(e.label == 0 for e in graph.edges)

    def test_body_terminal_excluded(self, current_mirror_graph):
        assert "gnd!" not in current_mirror_graph.net_index

    def test_label_range_validated(self):
        with pytest.raises(GraphConstructionError):
            Edge(element=0, net=0, label=9)

    def test_cross_coupled_labels(self):
        deck = """
m1 d1 d2 s gnd! nmos
m2 d2 d1 s gnd! nmos
.end
"""
        g = CircuitGraph.from_circuit(flatten(parse_netlist(deck)))
        m1 = g.element_index["m1"]
        d2 = g.net_index["d2"]
        assert g.edge_label(m1, d2) == GATE_BIT  # gate-only, not diode


class TestMatrices:
    def test_adjacency_symmetric(self, diff_ota_graph):
        adj = diff_ota_graph.adjacency()
        assert (adj != adj.T).nnz == 0

    def test_adjacency_bipartite(self, diff_ota_graph):
        """No element–element or net–net edges."""
        adj = diff_ota_graph.adjacency().toarray()
        ne = diff_ota_graph.n_elements
        assert not adj[:ne, :ne].any()
        assert not adj[ne:, ne:].any()

    def test_degrees_match_adjacency(self, diff_ota_graph):
        adj = diff_ota_graph.adjacency()
        np.testing.assert_array_equal(
            diff_ota_graph.degrees(), np.asarray(adj.sum(axis=1)).ravel()
        )

    def test_neighbors_consistent_with_edges(self, diff_ota_graph):
        adj_list = diff_ota_graph.neighbors()
        n_half_edges = sum(len(nbrs) for nbrs in adj_list)
        assert n_half_edges == 2 * len(diff_ota_graph.edges)


class TestVertexBookkeeping:
    def test_vertex_name_roundtrip(self, diff_ota_graph):
        g = diff_ota_graph
        for v in range(g.n_vertices):
            name = g.vertex_name(v)
            if g.is_element_vertex(v):
                assert g.element_vertex(name) == v
            else:
                assert g.net_vertex(name) == v

    def test_element_of_rejects_net_vertex(self, diff_ota_graph):
        with pytest.raises(IndexError):
            diff_ota_graph.element_of(diff_ota_graph.n_vertices - 1)

    def test_power_net_vertices(self, diff_ota_graph):
        power = diff_ota_graph.power_net_vertices()
        names = {diff_ota_graph.vertex_name(v) for v in power}
        assert names == {"vdd!", "gnd!"}

    def test_transistor_vertices(self, diff_ota_graph):
        assert len(diff_ota_graph.transistor_vertices()) == 6

    def test_subgraph_of_elements(self, diff_ota_graph):
        g = diff_ota_graph
        sub = g.subgraph_of_elements({g.element_index["m2"], g.element_index["m3"]})
        assert sub.n_elements == 2
        assert "id" in sub.net_index

    def test_summary_mentions_counts(self, diff_ota_graph):
        text = diff_ota_graph.summary()
        assert str(diff_ota_graph.n_elements) in text
