"""The 18-feature vertex embedding (Sec. V-A)."""

import numpy as np
import pytest

from repro.graph.bipartite import CircuitGraph
from repro.graph.features import (
    N_FEATURES,
    NetRole,
    ValueBuckets,
    feature_matrix,
    feature_names,
    infer_net_role,
)
from repro.spice.flatten import flatten
from repro.spice.netlist import Circuit, DeviceKind, make_mos, make_passive
from repro.spice.parser import parse_netlist


def _graph(deck: str) -> CircuitGraph:
    return CircuitGraph.from_circuit(flatten(parse_netlist(deck)))


class TestShape:
    def test_feature_count_is_18(self, diff_ota_graph):
        X = feature_matrix(diff_ota_graph)
        assert X.shape == (diff_ota_graph.n_vertices, 18)
        assert N_FEATURES == 18

    def test_feature_names_length(self):
        assert len(feature_names()) == N_FEATURES


class TestElementFeatures:
    def test_kind_one_hot(self):
        deck = "m1 d g s gnd! nmos\nm2 d g s vdd! pmos\nr1 a b 1k\nc1 a b 1p\nl1 a b 1n\n.end\n"
        g = _graph(deck)
        X = feature_matrix(g)
        names = feature_names()
        for dev_name, slot_name in [
            ("m1", "elem:nmos"),
            ("m2", "elem:pmos"),
            ("r1", "elem:resistor"),
            ("c1", "elem:capacitor"),
            ("l1", "elem:inductor"),
        ]:
            v = g.element_vertex(dev_name)
            assert X[v, names.index(slot_name)] == 1.0
            # Exactly one kind slot set.
            assert X[v, :8].sum() == 1.0

    def test_element_has_no_net_features(self, diff_ota_graph):
        X = feature_matrix(diff_ota_graph)
        for v in range(diff_ota_graph.n_elements):
            assert X[v, 12:17].sum() == 0.0

    def test_value_buckets(self):
        deck = "c1 a b 10f\nc2 a b 1p\nc3 a b 100p\n.end\n"
        g = _graph(deck)
        X = feature_matrix(g)
        names = feature_names()
        low, med, high = (
            names.index("elem:value_low"),
            names.index("elem:value_med"),
            names.index("elem:value_high"),
        )
        assert X[g.element_vertex("c1"), low] == 1.0
        assert X[g.element_vertex("c2"), med] == 1.0
        assert X[g.element_vertex("c3"), high] == 1.0

    def test_hierarchy_level_feature(self):
        deck = """
.subckt cell a
r1 a gnd! 1k
.ends
x1 n cell
r0 n gnd! 1k
.end
"""
        g = _graph(deck)
        X = feature_matrix(g)
        names = feature_names()
        level = names.index("elem:hier_level")
        hier = names.index("elem:hier_block")
        assert X[g.element_vertex("x1/r1"), level] == 1.0  # depth 2 / max 2
        assert X[g.element_vertex("r0"), level] == 0.5
        assert X[g.element_vertex("x1/r1"), hier] == 1.0
        assert X[g.element_vertex("r0"), hier] == 0.0

    def test_diode_connected_edge_feature(self, current_mirror_graph):
        X = feature_matrix(current_mirror_graph)
        names = feature_names()
        edge = names.index("elem:edge_pattern")
        m0 = current_mirror_graph.element_vertex("m0")  # diode: 101 = 5
        m1 = current_mirror_graph.element_vertex("m1")  # plain: max 100 = 4
        assert X[m0, edge] == pytest.approx(5 / 7)
        assert X[m1, edge] == pytest.approx(4 / 7)


class TestNetFeatures:
    def test_supply_ground(self, diff_ota_graph):
        X = feature_matrix(diff_ota_graph)
        names = feature_names()
        assert X[diff_ota_graph.net_vertex("vdd!"), names.index("net:supply")] == 1.0
        assert X[diff_ota_graph.net_vertex("gnd!"), names.index("net:ground")] == 1.0

    def test_port_roles_by_name(self):
        deck = "m1 vout vinp gnd! gnd! nmos\n.end\n"
        flat = flatten(parse_netlist(deck))
        flat.ports = ("vinp", "vout")
        g = CircuitGraph.from_circuit(flat)
        X = feature_matrix(g)
        names = feature_names()
        assert X[g.net_vertex("vinp"), names.index("net:input")] == 1.0
        assert X[g.net_vertex("vout"), names.index("net:output")] == 1.0

    def test_bias_nets_detected_internally(self):
        deck = "m1 out vbn gnd! gnd! nmos\n.end\n"
        g = _graph(deck)
        X = feature_matrix(g)
        names = feature_names()
        assert X[g.net_vertex("vbn"), names.index("net:bias")] == 1.0

    def test_overrides_win(self):
        deck = "m1 out inx gnd! gnd! nmos\n.end\n"
        g = _graph(deck)
        X = feature_matrix(g, net_roles={"inx": NetRole.INPUT})
        names = feature_names()
        assert X[g.net_vertex("inx"), names.index("net:input")] == 1.0

    def test_internal_net_has_no_role(self):
        deck = "m1 n1 g gnd! gnd! nmos\nm2 out n1 gnd! gnd! nmos\n.end\n"
        g = _graph(deck)
        X = feature_matrix(g)
        assert X[g.net_vertex("n1"), 12:17].sum() == 0.0

    def test_net_has_no_element_features(self, diff_ota_graph):
        X = feature_matrix(diff_ota_graph)
        for j in range(diff_ota_graph.n_nets):
            v = diff_ota_graph.n_elements + j
            assert X[v, :12].sum() == 0.0
            assert X[v, 17] == 0.0


class TestInferNetRole:
    @pytest.mark.parametrize(
        "net, role",
        [
            ("vdd!", NetRole.SUPPLY),
            ("gnd!", NetRole.GROUND),
            ("vb1", NetRole.BIAS),
            ("plain", NetRole.INTERNAL),
        ],
    )
    def test_non_port_roles(self, net, role):
        assert infer_net_role(net, ports=()) is role

    @pytest.mark.parametrize(
        "net, role",
        [
            ("vinp", NetRole.INPUT),
            ("rfin", NetRole.INPUT),
            ("vout", NetRole.OUTPUT),
            ("ifout", NetRole.OUTPUT),
            ("vbias", NetRole.BIAS),
        ],
    )
    def test_port_roles(self, net, role):
        assert infer_net_role(net, ports=(net,)) is role


class TestValueBuckets:
    def test_mos_by_width(self):
        buckets = ValueBuckets()
        small = make_mos("m1", DeviceKind.NMOS, "d", "g", "s", w=0.5e-6)
        mid = make_mos("m2", DeviceKind.NMOS, "d", "g", "s", w=2e-6)
        big = make_mos("m3", DeviceKind.NMOS, "d", "g", "s", w=20e-6)
        assert buckets.bucket(small) == 0
        assert buckets.bucket(mid) == 1
        assert buckets.bucket(big) == 2

    def test_boundary_is_high(self):
        buckets = ValueBuckets()
        dev = make_passive("r1", DeviceKind.RESISTOR, "a", "b", 100e3)
        assert buckets.bucket(dev) == 2
