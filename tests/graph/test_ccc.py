"""Channel-connected components (Post-I's graph substrate)."""

from repro.graph.bipartite import CircuitGraph
from repro.graph.ccc import channel_connected_components
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist


def _partition(deck: str):
    graph = CircuitGraph.from_circuit(flatten(parse_netlist(deck)))
    return graph, channel_connected_components(graph)


def _component_names(graph, partition):
    return [
        sorted(graph.elements[i].name for i in members)
        for members in partition.components
    ]


class TestTransistorClustering:
    def test_shared_drain_source_net_merges(self):
        deck = """
m1 mid in1 gnd! gnd! nmos
m2 out in2 mid gnd! nmos
.end
"""
        graph, part = _partition(deck)
        assert part.n_components == 1

    def test_gate_connection_does_not_merge(self):
        deck = """
m1 a in gnd! gnd! nmos
m2 out a gnd! gnd! nmos
.end
"""
        # m2's gate is m1's drain: gate contact only => separate CCCs...
        # but wait, m1.d = a and m2.g = a; m2's d/s are out/gnd!.
        graph, part = _partition(deck)
        assert part.n_components == 2

    def test_power_nets_do_not_merge(self):
        deck = """
m1 a in1 gnd! gnd! nmos
m2 b in2 gnd! gnd! nmos
.end
"""
        graph, part = _partition(deck)
        assert part.n_components == 2

    def test_supply_does_not_merge(self):
        deck = """
m1 a in1 vdd! vdd! pmos
m2 b in2 vdd! vdd! pmos
.end
"""
        graph, part = _partition(deck)
        assert part.n_components == 2

    def test_fig3_ota_components(self, diff_ota_graph):
        part = channel_connected_components(diff_ota_graph)
        names = _component_names(diff_ota_graph, part)
        # m0 is alone (its drain net n1 only reaches m1's *gate*);
        # m1..m5 are channel-connected through id/voutn/voutp.
        assert sorted(map(tuple, names)) == [
            ("m0",),
            ("m1", "m2", "m3", "m4", "m5"),
        ]


class TestPassiveAssignment:
    def test_passive_joins_touching_component(self):
        deck = """
m1 out in gnd! gnd! nmos
r1 vdd! out 1k
.end
"""
        graph, part = _partition(deck)
        assert part.n_components == 1

    def test_load_cap_to_ground_not_bound_via_power(self):
        """Regression: a cap to ground must not join a component that
        merely also touches ground."""
        deck = """
m1 ref ref gnd! gnd! nmos
r1 vdd! ref 10k
m2 out in tail gnd! nmos
m3 tail vb gnd! gnd! nmos
c1 out gnd! 1p
.end
"""
        graph, part = _partition(deck)
        cap_cid = part.of_element[graph.element_index["c1"]]
        m2_cid = part.of_element[graph.element_index["m2"]]
        assert cap_cid == m2_cid

    def test_floating_passive_is_singleton(self):
        deck = """
m1 out in gnd! gnd! nmos
r1 x y 1k
.end
"""
        graph, part = _partition(deck)
        assert part.n_components == 2
        r_cid = part.of_element[graph.element_index["r1"]]
        assert part.components[r_cid] == {graph.element_index["r1"]}

    def test_passive_chain(self):
        # r1 touches the transistor CCC; r2 touches r1's far node only —
        # passives don't extend CCC membership transitively, so r2 is
        # assigned separately (its net reaches no transistor component).
        deck = """
m1 a in gnd! gnd! nmos
r1 a b 1k
r2 b c 1k
.end
"""
        graph, part = _partition(deck)
        r1_cid = part.of_element[graph.element_index["r1"]]
        m1_cid = part.of_element[graph.element_index["m1"]]
        assert r1_cid == m1_cid


class TestNetAdjacency:
    def test_boundary_net_touches_two_components(self):
        deck = """
m1 a in gnd! gnd! nmos
m2 out a vdd! vdd! pmos
.end
"""
        # net a: m1 drain (CCC of m1) and m2 gate... wait m2's gate is a,
        # m2 d/s are out/vdd! so m2 is its own CCC; net a borders both.
        graph, part = _partition(deck)
        a_local = graph.net_index["a"]
        assert len(part.of_net[a_local]) == 2

    def test_of_element_total(self, diff_ota_graph):
        part = channel_connected_components(diff_ota_graph)
        assert len(part.of_element) == diff_ota_graph.n_elements

    def test_component_of_missing(self, diff_ota_graph):
        part = channel_connected_components(diff_ota_graph)
        assert part.component_of(10_000) is None

    def test_components_partition_elements(self, diff_ota_graph):
        part = channel_connected_components(diff_ota_graph)
        seen = set()
        for members in part.components:
            assert not (members & seen)
            seen |= members
        assert seen == set(range(diff_ota_graph.n_elements))
