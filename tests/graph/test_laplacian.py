"""Laplacian math (Eq. 1) and its spectral properties."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.laplacian import (
    fourier_basis,
    laplacian_spectrum,
    largest_eigenvalue,
    normalized_laplacian,
    rescaled_laplacian,
)

pytestmark = pytest.mark.property


def _path_graph(n: int) -> sp.csr_matrix:
    rows = list(range(n - 1)) + list(range(1, n))
    cols = list(range(1, n)) + list(range(n - 1))
    return sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))


def _random_adjacency(rng: np.random.Generator, n: int, p: float) -> sp.csr_matrix:
    upper = rng.random((n, n)) < p
    upper = np.triu(upper, k=1)
    adj = (upper | upper.T).astype(float)
    return sp.csr_matrix(adj)


class TestNormalizedLaplacian:
    def test_known_two_vertex_graph(self):
        adj = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        lap = normalized_laplacian(adj).toarray()
        np.testing.assert_allclose(lap, [[1.0, -1.0], [-1.0, 1.0]])

    def test_symmetric(self):
        lap = normalized_laplacian(_path_graph(7)).toarray()
        np.testing.assert_allclose(lap, lap.T)

    def test_diagonal_ones_for_connected_vertices(self):
        lap = normalized_laplacian(_path_graph(5)).toarray()
        np.testing.assert_allclose(np.diag(lap), np.ones(5))

    def test_isolated_vertex_identity_row(self):
        adj = sp.csr_matrix((3, 3))
        adj[0, 1] = adj[1, 0] = 1.0
        lap = normalized_laplacian(adj).toarray()
        assert lap[2, 2] == 1.0
        assert lap[2, 0] == lap[2, 1] == 0.0

    def test_constant_vector_near_kernel(self):
        # For a regular graph D^{-1/2} 1 is an exact 0-eigenvector.
        n = 6
        ring = sp.csr_matrix(
            (np.ones(2 * n), (list(range(n)) * 2, [(i + 1) % n for i in range(n)] + [(i - 1) % n for i in range(n)])),
            shape=(n, n),
        )
        lap = normalized_laplacian(ring)
        v = np.ones(n) / np.sqrt(n)
        np.testing.assert_allclose(lap @ v, np.zeros(n), atol=1e-12)

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_spectrum_in_zero_two(self, n, seed):
        """Normalized-Laplacian eigenvalues always lie in [0, 2]."""
        rng = np.random.default_rng(seed)
        adj = _random_adjacency(rng, n, p=0.4)
        spectrum = laplacian_spectrum(adj)
        assert spectrum.min() >= -1e-9
        assert spectrum.max() <= 2.0 + 1e-9

    def test_zero_eigenvalue_count_equals_components(self):
        adj = sp.block_diag([_path_graph(3), _path_graph(4)]).tocsr()
        spectrum = laplacian_spectrum(adj)
        assert int((np.abs(spectrum) < 1e-9).sum()) == 2


class TestLargestEigenvalue:
    def test_default_upper_bound(self):
        lap = normalized_laplacian(_path_graph(5))
        assert largest_eigenvalue(lap) == 2.0

    def test_exact_lanczos(self):
        lap = normalized_laplacian(_path_graph(20))
        exact = largest_eigenvalue(lap, exact=True)
        dense = np.linalg.eigvalsh(lap.toarray()).max()
        assert exact == pytest.approx(dense, rel=1e-6)

    def test_exact_tiny_graph(self):
        lap = normalized_laplacian(sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]])))
        assert largest_eigenvalue(lap, exact=True) == pytest.approx(2.0)

    def test_exact_memoized_per_matrix(self, monkeypatch):
        """Repeated exact λmax on the same Laplacian runs Lanczos once."""
        import repro.graph.laplacian as mod

        lap = normalized_laplacian(_path_graph(20))
        calls = {"n": 0}
        real = mod.spla.eigsh

        def counting_eigsh(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(mod.spla, "eigsh", counting_eigsh)
        first = largest_eigenvalue(lap, exact=True)
        second = largest_eigenvalue(lap, exact=True)
        assert first == second
        assert calls["n"] == 1
        # A distinct (even if equal-valued) matrix is its own entry.
        other = normalized_laplacian(_path_graph(20))
        largest_eigenvalue(other, exact=True)
        assert calls["n"] == 2


class TestRescaledLaplacian:
    def test_spectrum_in_minus_one_one(self):
        adj = _path_graph(9)
        lap = normalized_laplacian(adj)
        rescaled = rescaled_laplacian(lap).toarray()
        eigs = np.linalg.eigvalsh(rescaled)
        assert eigs.min() >= -1.0 - 1e-9
        assert eigs.max() <= 1.0 + 1e-9

    def test_rejects_nonpositive_lmax(self):
        lap = normalized_laplacian(_path_graph(3))
        with pytest.raises(ValueError):
            rescaled_laplacian(lap, lmax=0.0)

    def test_formula(self):
        lap = normalized_laplacian(_path_graph(4))
        rescaled = rescaled_laplacian(lap, lmax=2.0).toarray()
        expected = lap.toarray() - np.eye(4)
        np.testing.assert_allclose(rescaled, expected)


class TestFourierBasis:
    def test_reconstructs_laplacian(self):
        adj = _path_graph(6)
        eigenvalues, u = fourier_basis(adj)
        lap = normalized_laplacian(adj).toarray()
        np.testing.assert_allclose(u @ np.diag(eigenvalues) @ u.T, lap, atol=1e-10)

    def test_orthonormal(self):
        _eigenvalues, u = fourier_basis(_path_graph(6))
        np.testing.assert_allclose(u.T @ u, np.eye(6), atol=1e-10)

    def test_transform_roundtrip(self):
        adj = _path_graph(8)
        _eigs, u = fourier_basis(adj)
        x = np.arange(8, dtype=float)
        np.testing.assert_allclose(u @ (u.T @ x), x, atol=1e-10)
