"""Permutation equivariance — the property that makes a GCN a *graph*
network: relabeling the vertices permutes the outputs identically.

This is the formal counterpart of the paper's motivation that spectral
filters are "independent of the embedding of the graph in the plane".
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gcn.chebyshev import chebyshev_basis
from repro.gcn.layers import ChebConv, SampleContext
from repro.graph.laplacian import normalized_laplacian, rescaled_laplacian
from repro.utils.rng import seeded_rng

pytestmark = pytest.mark.property


def _random_graph(seed: int, n: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((n, n)) < 0.4, k=1)
    adj = (upper | upper.T).astype(float)
    return sp.csr_matrix(adj)


def _permutation_matrix(perm: np.ndarray) -> sp.csr_matrix:
    n = len(perm)
    return sp.csr_matrix(
        (np.ones(n), (np.arange(n), perm)), shape=(n, n)
    )


class TestChebyshevEquivariance:
    @given(
        st.integers(min_value=3, max_value=20),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_basis_equivariant(self, n, seed):
        """T_k(L̂(PAPᵀ)) (Px) = P · T_k(L̂(A)) x for any permutation P."""
        rng = np.random.default_rng(seed)
        adj = _random_graph(seed, n)
        x = rng.normal(size=(n, 2))
        perm = rng.permutation(n)
        p = _permutation_matrix(perm)

        lap = rescaled_laplacian(normalized_laplacian(adj))
        lap_perm = rescaled_laplacian(
            normalized_laplacian(p @ adj @ p.T)
        )
        basis = chebyshev_basis(lap, x, order=4)
        basis_perm = chebyshev_basis(lap_perm, p @ x, order=4)
        for k in range(4):
            np.testing.assert_allclose(basis_perm[k], p @ basis[k], atol=1e-9)

    def test_chebconv_layer_equivariant(self):
        n = 12
        adj = _random_graph(7, n)
        rng = np.random.default_rng(7)
        x = rng.normal(size=(n, 3))
        perm = rng.permutation(n)
        p = _permutation_matrix(perm)

        layer = ChebConv(3, 5, order=4, rng=seeded_rng(0))
        lap = rescaled_laplacian(normalized_laplacian(adj))
        lap_perm = rescaled_laplacian(normalized_laplacian(p @ adj @ p.T))

        out = layer.forward(
            x, SampleContext(laplacians=[lap]), training=False
        )
        out_perm = layer.forward(
            np.asarray((p @ x)), SampleContext(laplacians=[lap_perm]), training=False
        )
        np.testing.assert_allclose(out_perm, np.asarray(p @ out), atol=1e-9)

    def test_isomorphic_circuits_get_matching_predictions(self):
        """Two netlists differing only in device order / net names get
        identical per-vertex predictions up to the isomorphism."""
        from repro.gcn.model import GCNConfig, GCNModel
        from repro.gcn.samples import GraphSample
        from repro.graph.bipartite import CircuitGraph
        from repro.spice.flatten import flatten
        from repro.spice.parser import parse_netlist

        # Net names kept role-neutral on both sides: a net literally
        # named "bias" would (intentionally) get the bias-type feature
        # and break the isomorphism.
        deck_a = """
m1 out inp tail gnd! nmos w=2u l=100n
m2 outn inn tail gnd! nmos w=2u l=100n
m3 tail bg gnd! gnd! nmos w=1u l=100n
.end
"""
        # Same circuit: devices reordered, nets renamed consistently.
        deck_b = """
m3 t b gnd! gnd! nmos w=1u l=100n
m2 on i2 t gnd! nmos w=2u l=100n
m1 o i1 t gnd! nmos w=2u l=100n
.end
"""
        ga = CircuitGraph.from_circuit(flatten(parse_netlist(deck_a)))
        gb = CircuitGraph.from_circuit(flatten(parse_netlist(deck_b)))
        config = GCNConfig(
            n_classes=2, filter_size=4, channels=(4, 4), fc_size=8,
            dropout=0.0, batch_norm=False, pooling=False,
        )
        model = GCNModel(config)
        sa = GraphSample.from_graph(ga, {}, levels=0)
        sb = GraphSample.from_graph(gb, {}, levels=0)
        pa = model.predict_proba(sa)
        pb = model.predict_proba(sb)
        # Match vertices through the device correspondence.
        pairs = [("m1", "m1"), ("m2", "m2"), ("m3", "m3")]
        for name_a, name_b in pairs:
            va = ga.element_vertex(name_a)
            vb = gb.element_vertex(name_b)
            np.testing.assert_allclose(pa[va], pb[vb], atol=1e-9)
        net_pairs = [("tail", "t"), ("inp", "i1"), ("out", "o")]
        for net_a, net_b in net_pairs:
            np.testing.assert_allclose(
                pa[ga.net_vertex(net_a)], pb[gb.net_vertex(net_b)], atol=1e-9
            )
