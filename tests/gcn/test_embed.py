"""Embedding extraction and class-separation scoring."""

import numpy as np
import pytest

from repro.gcn.embed import (
    dataset_embeddings,
    fisher_separation,
    pca_project,
    separation_report,
    vertex_embeddings,
)
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.samples import GraphSample
from repro.gcn.train import TrainConfig, train
from repro.graph.bipartite import CircuitGraph
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist
from tests.conftest import DIFF_OTA_DECK

LABELS = {"m0": 1, "m1": 1, "m2": 0, "m3": 0, "m4": 0, "m5": 0}


@pytest.fixture()
def sample():
    graph = CircuitGraph.from_circuit(flatten(parse_netlist(DIFF_OTA_DECK)))
    return GraphSample.from_graph(graph, LABELS, levels=2)


def _model():
    return GCNModel(
        GCNConfig(
            n_classes=2, filter_size=4, channels=(8, 8), fc_size=16,
            dropout=0.0, batch_norm=False,
        )
    )


class TestVertexEmbeddings:
    def test_shape_is_fc_size(self, sample):
        model = _model()
        emb = vertex_embeddings(model, sample)
        assert emb.shape == (sample.n_vertices, 16)

    def test_deterministic(self, sample):
        model = _model()
        a = vertex_embeddings(model, sample)
        b = vertex_embeddings(model, sample)
        np.testing.assert_array_equal(a, b)

    def test_dataset_embeddings_masked(self, sample):
        model = _model()
        emb, labels = dataset_embeddings(model, [sample, sample])
        assert emb.shape[0] == 2 * int(sample.mask.sum())
        assert set(labels.tolist()) == {0, 1}


class TestFisherSeparation:
    def test_well_separated_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.1, size=(50, 4))
        b = rng.normal(5.0, 0.1, size=(50, 4))
        emb = np.vstack([a, b])
        labels = np.array([0] * 50 + [1] * 50)
        assert fisher_separation(emb, labels) > 100

    def test_identical_distributions_low(self):
        rng = np.random.default_rng(1)
        emb = rng.normal(size=(100, 4))
        labels = np.array([0, 1] * 50)
        assert fisher_separation(emb, labels) < 0.2

    def test_single_class_zero(self):
        emb = np.random.default_rng(2).normal(size=(10, 3))
        assert fisher_separation(emb, np.zeros(10, dtype=int)) == 0.0

    def test_scale_invariance(self):
        rng = np.random.default_rng(3)
        emb = rng.normal(size=(60, 5))
        labels = rng.integers(0, 2, 60)
        a = fisher_separation(emb, labels)
        b = fisher_separation(emb * 37.0, labels)
        assert a == pytest.approx(b)


class TestPca:
    def test_projection_shape(self):
        emb = np.random.default_rng(0).normal(size=(30, 8))
        proj = pca_project(emb, dims=2)
        assert proj.shape == (30, 2)

    def test_first_component_captures_most_variance(self):
        rng = np.random.default_rng(1)
        base = rng.normal(size=(100, 1)) * np.array([[10.0]])
        noise = rng.normal(size=(100, 3)) * 0.1
        emb = np.hstack([base, noise])
        proj = pca_project(emb, dims=2)
        assert proj[:, 0].var() > 10 * proj[:, 1].var()


class TestTrainingImprovesSeparation:
    def test_trained_beats_untrained(self, sample):
        """The Sec. III claim: structure + training separate classes."""
        model = _model()
        before, labels = dataset_embeddings(model, [sample])
        score_before = fisher_separation(before, labels)
        train(
            model, [sample],
            config=TrainConfig(epochs=80, batch_size=1, lr=5e-3, patience=0),
        )
        after, _ = dataset_embeddings(model, [sample])
        score_after = fisher_separation(after, labels)
        assert score_after > score_before

    def test_report_mentions_both(self, sample):
        model = _model()
        report = separation_report(model, [sample], ("ota", "bias"))
        assert "raw 18 features" in report
        assert "GCN embeddings" in report
