"""Block-diagonal minibatch packing: structural invariants and
numerical parity with the per-sample reference path.

Tolerance contract (see ``repro/gcn/batch.py``): graph-structured ops
are bitwise identical between the packed and per-sample paths, but the
dense GEMMs may differ by ~1 ulp (BLAS kernels are not row-invariant
for narrow outputs), so logits are pinned to tight fp64 tolerance while
argmax predictions are pinned exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synth import (
    build_samples,
    generate_ota_bias_dataset,
    task_classes,
)
from repro.exceptions import ModelConfigError
from repro.gcn.batch import block_diag_csr, pack_samples
from repro.gcn.layers import BatchNorm
from repro.gcn.loss import batched_cross_entropy, cross_entropy, softmax
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.samples import class_weights
from repro.gcn.train import TrainConfig, train

#: fp64 tolerance for packed-vs-per-sample logits (GEMM row ordering).
RTOL = 1e-10
ATOL = 1e-12


def _config(**overrides) -> GCNConfig:
    base = dict(
        n_features=18,
        n_classes=len(task_classes("ota")),
        filter_size=4,
        channels=(8, 8),
        fc_size=16,
        dropout=0.0,
        batch_norm=True,
        seed=0,
    )
    base.update(overrides)
    return GCNConfig(**base)


@pytest.fixture(scope="module")
def pool_samples():
    """Ten OTA-bias samples of varying vertex counts (built serially so
    the module stays deterministic under any worker count)."""
    dataset = generate_ota_bias_dataset(10, seed="batch-pool", workers=1)
    return build_samples(dataset, task_classes("ota"), levels=2, workers=1)


class TestPacking:
    def test_offsets_and_concatenation(self, pool_samples):
        samples = pool_samples[:4]
        packed = pack_samples(samples)
        sizes = [s.n_vertices for s in samples]
        assert packed.n_graphs == 4
        assert packed.n_vertices == sum(sizes)
        assert packed.offsets[0].tolist() == np.concatenate(
            [[0], np.cumsum(sizes)]
        ).tolist()
        bounds = packed.offsets[0]
        for i, sample in enumerate(samples):
            seg = slice(bounds[i], bounds[i + 1])
            assert np.array_equal(packed.features[seg], sample.features)
            assert np.array_equal(packed.labels[seg], sample.labels)
            assert np.array_equal(packed.mask[seg], sample.mask)

    def test_laplacians_are_block_diagonal(self, pool_samples):
        samples = pool_samples[:3]
        packed = pack_samples(samples)
        for level, lap in enumerate(packed.pyramid.laplacians):
            bounds = packed.offsets[level]
            dense = lap.toarray()
            for i, sample in enumerate(samples):
                seg = slice(bounds[i], bounds[i + 1])
                block = sample.pyramid.laplacians[level].toarray()
                assert np.array_equal(dense[seg, seg], block)
            # Off-diagonal blocks stay empty: total nnz is the sum.
            assert lap.nnz == sum(
                s.pyramid.laplacians[level].nnz for s in samples
            )

    def test_assignments_stay_in_block(self, pool_samples):
        samples = pool_samples[:3]
        packed = pack_samples(samples)
        for level, assignment in enumerate(packed.pyramid.assignments):
            fine = packed.offsets[level]
            coarse = packed.offsets[level + 1]
            for i in range(len(samples)):
                seg = assignment[fine[i] : fine[i + 1]]
                assert seg.min() >= coarse[i]
                assert seg.max() < coarse[i + 1]

    def test_split_roundtrip(self, pool_samples):
        samples = pool_samples[:3]
        packed = pack_samples(samples)
        for sample, segment in zip(samples, packed.split(packed.features)):
            assert np.array_equal(segment, sample.features)

    def test_single_block_passthrough(self, pool_samples):
        lap = pool_samples[0].pyramid.laplacians[0]
        assert block_diag_csr([lap]) is lap

    def test_empty_batch_raises(self):
        with pytest.raises(ModelConfigError, match="empty sample batch"):
            pack_samples([])

    def test_missing_levels_fail_like_per_sample(self, pool_samples):
        shallow = build_samples(
            generate_ota_bias_dataset(2, seed="batch-shallow", workers=1),
            task_classes("ota"),
            levels=1,
            workers=1,
        )
        model = GCNModel(_config())  # needs 2 levels
        packed = pack_samples(shallow)
        with pytest.raises(ModelConfigError, match="coarsening levels"):
            model.forward_packed(packed, training=False)


class TestForwardParity:
    def test_random_packings_match_per_sample(self, pool_samples):
        rng = np.random.default_rng(7)
        model = GCNModel(_config())
        for _ in range(5):
            size = int(rng.integers(2, 6))
            picks = rng.choice(len(pool_samples), size=size, replace=False)
            samples = [pool_samples[i] for i in picks]
            packed = pack_samples(samples)
            logits = model.forward_packed(packed, training=False)
            for sample, segment in zip(samples, packed.split(logits)):
                reference = model.forward(sample, training=False)
                np.testing.assert_allclose(
                    segment, reference, rtol=RTOL, atol=ATOL
                )
                assert np.array_equal(
                    segment.argmax(axis=1), reference.argmax(axis=1)
                )

    def test_predict_proba_batch_matches(self, pool_samples):
        samples = pool_samples[:5]
        model = GCNModel(_config())
        batched = model.predict_proba_batch(samples)
        for sample, probabilities in zip(samples, batched):
            np.testing.assert_allclose(
                probabilities,
                model.predict_proba(sample),
                rtol=RTOL,
                atol=ATOL,
            )

    def test_predict_batch_matches(self, pool_samples):
        model = GCNModel(_config())
        batched = model.predict_batch(pool_samples)
        for sample, predictions in zip(pool_samples, batched):
            assert np.array_equal(predictions, model.predict(sample))

    def test_training_forward_matches_sequential(self, pool_samples):
        """Training mode: BatchNorm folds running stats per segment in
        pack order and Dropout draws per segment from one stream, so a
        packed forward reproduces the sequential per-sample forwards —
        including the updated running statistics, bitwise."""
        samples = pool_samples[:4]
        config = _config(dropout=0.3)
        reference = GCNModel(config)
        packed_model = GCNModel(config)

        per_sample = [
            reference.forward(sample, training=True) for sample in samples
        ]
        packed = pack_samples(samples)
        logits = packed_model.forward_packed(packed, training=True)

        for expected, segment in zip(per_sample, packed.split(logits)):
            np.testing.assert_allclose(segment, expected, rtol=RTOL, atol=ATOL)
        for layer_ref, layer_packed in zip(
            reference.layers, packed_model.layers
        ):
            if isinstance(layer_ref, BatchNorm):
                assert np.array_equal(
                    layer_ref.running_mean, layer_packed.running_mean
                )
                assert np.array_equal(
                    layer_ref.running_var, layer_packed.running_var
                )

    def test_input_basis_cache_reused_across_packings(self, pool_samples):
        samples = pool_samples[:3]
        model = GCNModel(_config())
        first = pack_samples(samples)
        model.forward_packed(first, training=False)
        assert all("cheb-input-flat" in s.runtime_cache for s in samples)
        # Repacking takes the warm vstack route; the flat is bitwise
        # identical to the cold packed recurrence.
        second = pack_samples(samples)
        model.forward_packed(second, training=False)
        assert np.array_equal(
            first.runtime_cache["cheb-input-flat"][3],
            second.runtime_cache["cheb-input-flat"][3],
        )


class TestBackwardParity:
    def _accumulate_reference(self, model, samples, weights):
        model.zero_grad()
        losses = []
        for sample in samples:
            logits = model.forward(sample, training=True)
            loss, grad = cross_entropy(
                logits, sample.labels, sample.mask, weights
            )
            model.backward(grad / len(samples))
            losses.append(loss)
        return losses

    def test_gradients_match_per_sample_accumulation(self, pool_samples):
        samples = pool_samples[:4]
        weights = class_weights(samples, len(task_classes("ota")))
        config = _config()
        reference = GCNModel(config)
        packed_model = GCNModel(config)

        ref_losses = self._accumulate_reference(reference, samples, weights)

        packed = pack_samples(samples)
        packed_model.zero_grad()
        logits = packed_model.forward_packed(packed, training=True)
        losses, counts, grad = batched_cross_entropy(
            logits, packed.labels, packed.mask, packed.offsets[0], weights
        )
        packed_model.backward(grad / len(samples))

        np.testing.assert_allclose(losses, ref_losses, rtol=RTOL, atol=ATOL)
        assert counts.tolist() == [int(s.mask.sum()) for s in samples]
        for layer_ref, layer_packed in zip(
            reference.layers, packed_model.layers
        ):
            for key in layer_ref.grads:
                np.testing.assert_allclose(
                    layer_packed.grads[key],
                    layer_ref.grads[key],
                    rtol=1e-8,
                    atol=1e-12,
                )

    def test_batched_loss_grad_rows_match(self, pool_samples):
        """Per-row gradient entries are elementwise (softmax row, pick,
        scale) — identical math to per-sample when fed the same logits."""
        samples = pool_samples[:3]
        packed = pack_samples(samples)
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(packed.n_vertices, 2))
        losses, counts, grad = batched_cross_entropy(
            logits, packed.labels, packed.mask, packed.offsets[0]
        )
        bounds = packed.offsets[0]
        for i, sample in enumerate(samples):
            seg = slice(bounds[i], bounds[i + 1])
            loss, ref_grad = cross_entropy(
                logits[seg], sample.labels, sample.mask
            )
            assert losses[i] == loss
            assert np.array_equal(grad[seg], ref_grad)

    def test_all_masked_batch_is_a_no_op(self, pool_samples):
        samples = pool_samples[:2]
        packed = pack_samples(samples)
        logits = softmax(np.zeros((packed.n_vertices, 2)))
        losses, counts, grad = batched_cross_entropy(
            logits, packed.labels, np.zeros_like(packed.mask),
            packed.offsets[0],
        )
        assert not losses.any()
        assert not counts.any()
        assert not grad.any()


class TestTrainingParity:
    def test_batched_training_matches_reference_loop(self, pool_samples):
        """Same seed, batched vs per-sample minibatches: the loss and
        accuracy curves coincide and early stopping picks the same
        epoch (weights differ only by GEMM summation order)."""
        train_set = pool_samples[:7]
        val_set = pool_samples[7:]
        base = dict(
            epochs=6, batch_size=3, lr=3e-3, patience=0, seed=11
        )
        config = _config(dropout=0.2)

        model_batched = GCNModel(config)
        batched_history = train(
            model_batched,
            train_set,
            val_set,
            TrainConfig(batched=True, **base),
        )
        model_reference = GCNModel(config)
        reference_history = train(
            model_reference,
            train_set,
            val_set,
            TrainConfig(batched=False, **base),
        )

        np.testing.assert_allclose(
            batched_history.train_loss,
            reference_history.train_loss,
            rtol=1e-7,
        )
        np.testing.assert_allclose(
            batched_history.train_accuracy,
            reference_history.train_accuracy,
            atol=1e-9,
        )
        np.testing.assert_allclose(
            batched_history.val_accuracy,
            reference_history.val_accuracy,
            atol=1e-9,
        )
        assert batched_history.best_epoch == reference_history.best_epoch
