"""Model assembly, end-to-end gradients, (de)serialization."""

import numpy as np
import pytest

from repro.exceptions import ModelConfigError
from repro.gcn.loss import cross_entropy
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.samples import GraphSample
from repro.graph.bipartite import CircuitGraph
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist
from tests.conftest import DIFF_OTA_DECK

LABELS = {"m0": 1, "m1": 1, "m2": 0, "m3": 0, "m4": 0, "m5": 0}


@pytest.fixture()
def sample() -> GraphSample:
    graph = CircuitGraph.from_circuit(flatten(parse_netlist(DIFF_OTA_DECK)))
    return GraphSample.from_graph(graph, LABELS, levels=2)


def _small_config(**overrides) -> GCNConfig:
    base = dict(
        n_classes=2,
        filter_size=4,
        channels=(4, 6),
        fc_size=8,
        dropout=0.0,
        batch_norm=False,
        pooling=True,
        seed=0,
    )
    base.update(overrides)
    return GCNConfig(**base)


class TestConfig:
    def test_defaults_match_paper(self):
        config = GCNConfig()
        assert config.n_layers == 2
        assert config.filter_size == 32
        assert config.fc_size == 512
        assert config.activation == "relu"

    def test_rejects_zero_layers(self):
        with pytest.raises(ModelConfigError):
            GCNConfig(n_layers=0)

    def test_rejects_short_channels(self):
        with pytest.raises(ModelConfigError):
            GCNConfig(n_layers=3, channels=(8, 8))

    def test_rejects_unknown_activation(self):
        with pytest.raises(ModelConfigError):
            GCNConfig(activation="gelu")

    def test_with_updates(self):
        config = GCNConfig().with_(filter_size=16)
        assert config.filter_size == 16
        assert config.fc_size == 512

    def test_levels_needed(self):
        assert GCNConfig(n_layers=2, pooling=True).levels_needed == 2
        assert GCNConfig(n_layers=2, pooling=False).levels_needed == 0


class TestForward:
    def test_logits_shape(self, sample):
        model = GCNModel(_small_config())
        logits = model.forward(sample, training=False)
        assert logits.shape == (sample.n_vertices, 2)

    def test_deterministic_at_inference(self, sample):
        model = GCNModel(_small_config(dropout=0.5))
        a = model.forward(sample, training=False)
        b = model.forward(sample, training=False)
        np.testing.assert_array_equal(a, b)

    def test_pooling_model_needs_levels(self, sample):
        model = GCNModel(_small_config(n_layers=2, channels=(4, 4, 4)))
        shallow = GraphSample(
            name=sample.name,
            features=sample.features,
            labels=sample.labels,
            mask=sample.mask,
            pyramid=sample.pyramid,
        )
        shallow.pyramid.assignments = shallow.pyramid.assignments[:1]
        with pytest.raises(ModelConfigError):
            model.forward(shallow, training=False)

    def test_no_pooling_variant(self, sample):
        model = GCNModel(_small_config(pooling=False))
        logits = model.forward(sample, training=False)
        assert logits.shape == (sample.n_vertices, 2)

    def test_tanh_variant_runs(self, sample):
        model = GCNModel(_small_config(activation="tanh"))
        assert np.isfinite(model.forward(sample, training=False)).all()

    def test_three_layer_variant(self, sample):
        sample3 = GraphSample.from_graph(sample.graph, LABELS, levels=3)
        model = GCNModel(_small_config(n_layers=3, channels=(4, 4, 4)))
        assert model.forward(sample3, training=False).shape[0] == sample.n_vertices


class TestEndToEndGradients:
    def test_full_model_gradient_check(self, sample):
        model = GCNModel(_small_config())
        logits = model.forward(sample, training=True)
        _loss, grad = cross_entropy(logits, sample.labels, sample.mask)
        model.zero_grad()
        model.backward(grad)

        def loss_value():
            lg = model.forward(sample, training=True)
            value, _ = cross_entropy(lg, sample.labels, sample.mask)
            return value

        eps = 1e-6
        for layer in model.layers:
            for key, param in layer.params.items():
                g = layer.grads[key]
                idx = np.unravel_index(int(np.abs(g).argmax()), g.shape)
                orig = param[idx]
                param[idx] = orig + eps
                up = loss_value()
                param[idx] = orig - eps
                down = loss_value()
                param[idx] = orig
                numeric = (up - down) / (2 * eps)
                assert g[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_batchnorm_model_gradient_check(self, sample):
        model = GCNModel(_small_config(batch_norm=True))
        logits = model.forward(sample, training=True)
        _loss, grad = cross_entropy(logits, sample.labels, sample.mask)
        model.zero_grad()
        model.backward(grad)
        layer = model.layers[0]
        g = layer.grads["weight"]
        idx = np.unravel_index(int(np.abs(g).argmax()), g.shape)
        eps = 1e-6
        orig = layer.params["weight"][idx]

        def loss_value():
            lg = model.forward(sample, training=True)
            value, _ = cross_entropy(lg, sample.labels, sample.mask)
            return value

        layer.params["weight"][idx] = orig + eps
        up = loss_value()
        layer.params["weight"][idx] = orig - eps
        down = loss_value()
        layer.params["weight"][idx] = orig
        # BatchNorm running stats update on every forward, so tolerance
        # is looser; momentum keeps the drift tiny.
        assert g[idx] == pytest.approx((up - down) / (2 * eps), rel=1e-2)


class TestSerialization:
    def test_state_roundtrip(self, sample):
        model = GCNModel(_small_config(batch_norm=True))
        state = model.state_dict()
        twin = GCNModel(_small_config(batch_norm=True, seed=99))
        twin.load_state_dict(state)
        np.testing.assert_array_equal(
            model.forward(sample, False), twin.forward(sample, False)
        )

    def test_save_load_file(self, sample, tmp_path):
        model = GCNModel(_small_config())
        path = str(tmp_path / "model.npz")
        model.save(path)
        loaded = GCNModel.load(path, _small_config(seed=5))
        np.testing.assert_array_equal(
            model.forward(sample, False), loaded.forward(sample, False)
        )

    def test_clone_is_independent(self, sample):
        model = GCNModel(_small_config())
        twin = model.clone()
        model.layers[0].params["weight"][:] = 0.0
        assert np.abs(twin.layers[0].params["weight"]).sum() > 0

    def test_load_rejects_shape_mismatch(self):
        model = GCNModel(_small_config())
        state = model.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ModelConfigError):
            GCNModel(_small_config()).load_state_dict(state)

    def test_load_rejects_missing_key(self):
        model = GCNModel(_small_config())
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(ModelConfigError):
            GCNModel(_small_config()).load_state_dict(state)

    def test_parameter_count_positive(self):
        model = GCNModel(_small_config())
        assert model.n_parameters() > 0
        assert len(model.weight_arrays()) >= 3
