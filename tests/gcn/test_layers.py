"""Per-layer forward semantics and gradient checks.

Every layer with parameters gets a central-difference gradient check on
both its parameters and its input — the backbone guarantee that the
from-scratch GCN optimizes what it claims to.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ModelConfigError
from repro.gcn.coarsening import build_pyramid
from repro.gcn.layers import (
    BatchNorm,
    ChebConv,
    Concat,
    Dense,
    Dropout,
    GraphPool,
    GraphUnpool,
    ReLU,
    SampleContext,
    Tanh,
)
from repro.utils.rng import seeded_rng


def _ring_adj(n: int) -> sp.csr_matrix:
    rows = list(range(n)) * 2
    cols = [(i + 1) % n for i in range(n)] + [(i - 1) % n for i in range(n)]
    return sp.csr_matrix((np.ones(2 * n), (rows, cols)), shape=(n, n))


def _ctx(n: int = 8, levels: int = 2) -> SampleContext:
    pyramid = build_pyramid(_ring_adj(n), levels=levels, rng=seeded_rng(0))
    return SampleContext(
        laplacians=pyramid.laplacians, assignments=pyramid.assignments
    )


def _check_param_gradients(layer, x, ctx_factory, tol=1e-5):
    """Central-difference check on every parameter of ``layer``."""
    rng = np.random.default_rng(0)
    out = layer.forward(x, ctx_factory(), training=True)
    upstream = rng.normal(size=out.shape)
    layer.zero_grad()
    layer.backward(upstream)

    def loss():
        return float((layer.forward(x, ctx_factory(), training=True) * upstream).sum())

    for key, param in layer.params.items():
        grad = layer.grads[key]
        flat_idx = int(np.abs(grad).argmax())
        idx = np.unravel_index(flat_idx, grad.shape)
        eps = 1e-6
        orig = param[idx]
        param[idx] = orig + eps
        up = loss()
        param[idx] = orig - eps
        down = loss()
        param[idx] = orig
        numeric = (up - down) / (2 * eps)
        analytic = grad[idx]
        assert analytic == pytest.approx(numeric, rel=tol, abs=1e-7), key


def _check_input_gradient(layer, x, ctx_factory, tol=1e-5):
    rng = np.random.default_rng(1)
    out = layer.forward(x, ctx_factory(), training=True)
    upstream = rng.normal(size=out.shape)
    layer.zero_grad()
    grad_x = layer.backward(upstream)

    def loss(x_in):
        return float(
            (layer.forward(x_in, ctx_factory(), training=True) * upstream).sum()
        )

    eps = 1e-6
    idx = np.unravel_index(int(np.abs(grad_x).argmax()), grad_x.shape)
    up, down = x.copy(), x.copy()
    up[idx] += eps
    down[idx] -= eps
    numeric = (loss(up) - loss(down)) / (2 * eps)
    assert grad_x[idx] == pytest.approx(numeric, rel=tol, abs=1e-7)


class TestChebConv:
    def test_output_shape(self):
        layer = ChebConv(3, 5, order=4, rng=seeded_rng(0))
        out = layer.forward(np.zeros((8, 3)), _ctx(), training=True)
        assert out.shape == (8, 5)

    def test_param_gradients(self):
        layer = ChebConv(3, 4, order=5, rng=seeded_rng(0))
        _check_param_gradients(layer, np.random.default_rng(2).normal(size=(8, 3)), _ctx)

    def test_input_gradient(self):
        layer = ChebConv(3, 4, order=5, rng=seeded_rng(0))
        _check_input_gradient(layer, np.random.default_rng(3).normal(size=(8, 3)), _ctx)

    def test_order_one_is_dense_per_vertex(self):
        layer = ChebConv(2, 2, order=1, rng=seeded_rng(0))
        x = np.random.default_rng(4).normal(size=(8, 2))
        out = layer.forward(x, _ctx(), training=True)
        np.testing.assert_allclose(
            out, x @ layer.params["weight"] + layer.params["bias"]
        )

    def test_invalid_order(self):
        with pytest.raises(ModelConfigError):
            ChebConv(2, 2, order=0, rng=seeded_rng(0))

    def test_parameter_count(self):
        layer = ChebConv(3, 5, order=4, rng=seeded_rng(0))
        assert layer.n_parameters() == 4 * 3 * 5 + 5


class TestDense:
    def test_affine(self):
        layer = Dense(3, 2, rng=seeded_rng(0))
        x = np.random.default_rng(0).normal(size=(4, 3))
        out = layer.forward(x, _ctx(), training=True)
        np.testing.assert_allclose(out, x @ layer.params["weight"] + layer.params["bias"])

    def test_gradients(self):
        layer = Dense(3, 2, rng=seeded_rng(0))
        x = np.random.default_rng(1).normal(size=(4, 3))
        _check_param_gradients(layer, x, _ctx)
        _check_input_gradient(layer, x, _ctx)


class TestActivations:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]), _ctx(), True)
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_relu_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]), _ctx(), True)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 5.0]])

    def test_tanh_gradient(self):
        layer = Tanh()
        x = np.random.default_rng(0).normal(size=(4, 3))
        _check_input_gradient(layer, x, _ctx)


class TestDropout:
    def test_identity_at_inference(self):
        layer = Dropout(0.5, seeded_rng(0))
        x = np.ones((10, 10))
        np.testing.assert_array_equal(layer.forward(x, _ctx(), training=False), x)

    def test_scaling_preserves_expectation(self):
        layer = Dropout(0.4, seeded_rng(0))
        x = np.ones((300, 300))
        out = layer.forward(x, _ctx(), training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, seeded_rng(0))
        x = np.ones((6, 6))
        out = layer.forward(x, _ctx(), training=True)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)

    def test_invalid_rate(self):
        with pytest.raises(ModelConfigError):
            Dropout(1.0, seeded_rng(0))


class TestBatchNorm:
    def test_normalizes_training_batch(self):
        layer = BatchNorm(3)
        x = np.random.default_rng(0).normal(5.0, 3.0, size=(50, 3))
        out = layer.forward(x, _ctx(), training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_used_at_inference(self):
        layer = BatchNorm(2, momentum=0.0)  # running = last batch
        x = np.random.default_rng(1).normal(2.0, 1.0, size=(40, 2))
        layer.forward(x, _ctx(), training=True)
        out = layer.forward(x, _ctx(), training=False)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=0.1)

    def test_gradients(self):
        layer = BatchNorm(3)
        x = np.random.default_rng(2).normal(size=(10, 3))
        _check_param_gradients(layer, x, _ctx)
        _check_input_gradient(layer, x, _ctx, tol=1e-4)

    def test_single_vertex_graph_stable(self):
        layer = BatchNorm(3)
        out = layer.forward(np.ones((1, 3)), _ctx(), training=True)
        assert np.isfinite(out).all()
        grad = layer.backward(np.ones((1, 3)))
        assert np.isfinite(grad).all()


class TestPooling:
    def test_pool_halves_graph(self):
        ctx = _ctx(8)
        pool = GraphPool()
        x = np.random.default_rng(0).normal(size=(8, 3))
        out = pool.forward(x, ctx, training=True)
        assert out.shape[0] == int(ctx.assignments[0].max()) + 1
        assert ctx.level == 1

    def test_pool_takes_max(self):
        ctx = _ctx(8)
        pool = GraphPool()
        x = np.random.default_rng(1).normal(size=(8, 2))
        out = pool.forward(x, ctx, training=True)
        assign = ctx.assignments[0]
        for coarse in range(out.shape[0]):
            members = np.where(assign == coarse)[0]
            np.testing.assert_allclose(out[coarse], x[members].max(axis=0))

    def test_pool_backward_routes_to_winner(self):
        ctx = _ctx(8)
        pool = GraphPool()
        x = np.random.default_rng(2).normal(size=(8, 2))
        out = pool.forward(x, ctx, training=True)
        grad = pool.backward(np.ones_like(out))
        # Gradient mass is conserved and lands only on winners.
        assert grad.sum() == pytest.approx(out.size)
        assign = ctx.assignments[0]
        for coarse in range(out.shape[0]):
            members = np.where(assign == coarse)[0]
            for col in range(2):
                nonzero = [m for m in members if grad[m, col] != 0]
                assert len(nonzero) == 1
                assert x[nonzero[0], col] == pytest.approx(out[coarse, col])

    def test_pool_beyond_levels_fails(self):
        ctx = _ctx(8, levels=1)
        pool = GraphPool()
        x = np.zeros((8, 2))
        pool.forward(x, ctx, training=True)
        with pytest.raises(ModelConfigError):
            GraphPool().forward(np.zeros((ctx.laplacians[1].shape[0], 2)), ctx, True)

    def test_unpool_inverts_level(self):
        ctx = _ctx(8)
        pool = GraphPool()
        unpool = GraphUnpool()
        x = np.random.default_rng(3).normal(size=(8, 2))
        pooled = pool.forward(x, ctx, training=True)
        restored = unpool.forward(pooled, ctx, training=True)
        assert restored.shape == x.shape
        assert ctx.level == 0
        # Every vertex carries its cluster's pooled feature.
        assign = ctx.assignments[0]
        for fine in range(8):
            np.testing.assert_array_equal(restored[fine], pooled[assign[fine]])

    def test_unpool_backward_sums_members(self):
        ctx = _ctx(8)
        pool = GraphPool()
        unpool = GraphUnpool()
        x = np.random.default_rng(4).normal(size=(8, 2))
        pooled = pool.forward(x, ctx, training=True)
        unpool.forward(pooled, ctx, training=True)
        grad = unpool.backward(np.ones((8, 2)))
        assign = ctx.assignments[0]
        for coarse in range(pooled.shape[0]):
            count = int((assign == coarse).sum())
            np.testing.assert_allclose(grad[coarse], count)

    def test_unpool_at_level_zero_fails(self):
        ctx = _ctx(8)
        with pytest.raises(ModelConfigError):
            GraphUnpool().forward(np.zeros((8, 2)), ctx, True)


class TestConcat:
    def test_concat_and_split(self):
        layer = Concat()
        layer.saved = np.ones((4, 2))
        out = layer.forward(np.zeros((4, 3)), _ctx(), True)
        assert out.shape == (4, 5)
        grad = layer.backward(np.arange(20.0).reshape(4, 5))
        assert grad.shape == (4, 3)

    def test_requires_saved(self):
        with pytest.raises(ModelConfigError):
            Concat().forward(np.zeros((4, 3)), _ctx(), True)


class TestGraphPoolVectorization:
    """The scatter-based pool must match a per-vertex reference loop."""

    @staticmethod
    def _reference_pool(x, assign):
        n_coarse = int(assign.max()) + 1 if assign.size else 0
        out = np.full((n_coarse, x.shape[1]), -np.inf)
        np.maximum.at(out, assign, x)
        winner = np.zeros((n_coarse, x.shape[1]), dtype=np.int64)
        for fine, coarse in enumerate(assign):
            exact = x[fine] == out[coarse]
            winner[coarse] = np.where(exact, fine, winner[coarse])
        return out, winner

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_forward_and_winner_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 24))
        ctx = _ctx(n)
        x = rng.normal(size=(n, 5))
        # Inject exact ties so winner-routing tie-breaks are exercised.
        x[:: max(1, n // 3)] = x[0]
        pool = GraphPool()
        out = pool.forward(x, ctx, training=True)
        ref_out, ref_winner = self._reference_pool(x, ctx.assignments[0])
        np.testing.assert_array_equal(out, ref_out)
        np.testing.assert_array_equal(pool._winner, ref_winner)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_backward_matches_reference_routing(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        ctx = _ctx(n)
        x = rng.normal(size=(n, 3))
        pool = GraphPool()
        out = pool.forward(x, ctx, training=True)
        grad_up = rng.normal(size=out.shape)
        grad = pool.backward(grad_up)
        reference = np.zeros((n, 3))
        cols = np.arange(3)
        for coarse in range(out.shape[0]):
            reference[pool._winner[coarse], cols] += grad_up[coarse]
        np.testing.assert_array_equal(grad, reference)


class TestChebConvInputCache:
    def test_cached_forward_is_identical(self):
        """With a context cache, repeat forwards reuse the basis and
        produce the exact same output."""
        rng = seeded_rng(7)
        layer = ChebConv(3, 4, order=5, rng=rng)
        layer.input_layer = True
        pyramid = build_pyramid(_ring_adj(8), levels=1, rng=seeded_rng(0))
        cache: dict = {}
        x = np.random.default_rng(1).normal(size=(8, 3))

        def fresh_ctx():
            return SampleContext(
                laplacians=pyramid.laplacians,
                assignments=pyramid.assignments,
                cache=cache,
            )

        first = layer.forward(x, fresh_ctx(), training=True)
        assert "cheb-input-flat" in cache
        cached_flat = cache["cheb-input-flat"][3]
        second = layer.forward(x, fresh_ctx(), training=True)
        np.testing.assert_array_equal(first, second)
        assert layer._flat is cached_flat  # reused, not recomputed

    def test_different_input_misses(self):
        layer = ChebConv(3, 4, order=5, rng=seeded_rng(7))
        layer.input_layer = True
        pyramid = build_pyramid(_ring_adj(8), levels=1, rng=seeded_rng(0))
        cache: dict = {}
        ctx = SampleContext(
            laplacians=pyramid.laplacians,
            assignments=pyramid.assignments,
            cache=cache,
        )
        rng = np.random.default_rng(1)
        layer.forward(rng.normal(size=(8, 3)), ctx, training=True)
        stale = cache["cheb-input-flat"][3]
        ctx.level = 0
        layer.forward(rng.normal(size=(8, 3)), ctx, training=True)
        assert cache["cheb-input-flat"][3] is not stale

    def test_input_layer_backward_skips_dead_gradient(self):
        layer = ChebConv(3, 4, order=5, rng=seeded_rng(7))
        layer.input_layer = True
        pyramid = build_pyramid(_ring_adj(8), levels=1, rng=seeded_rng(0))
        ctx = SampleContext(
            laplacians=pyramid.laplacians, assignments=pyramid.assignments
        )
        x = np.random.default_rng(1).normal(size=(8, 3))
        out = layer.forward(x, ctx, training=True)
        layer.zero_grad()
        grad_in = layer.backward(np.ones_like(out))
        # Parameter gradients are real; the dead input gradient is zeros.
        assert np.abs(layer.grads["weight"]).sum() > 0
        np.testing.assert_array_equal(grad_in, np.zeros((8, 3)))
