"""Softmax cross-entropy: values, gradients, masks, class weights."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gcn.loss import cross_entropy, l2_penalty, softmax

pytestmark = pytest.mark.property


class TestSoftmax:
    def test_rows_sum_to_one(self):
        probs = softmax(np.random.default_rng(0).normal(size=(5, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        logits = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_no_overflow_on_large_logits(self):
        probs = softmax(np.array([[1e4, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        labels = np.array([0, 1])
        loss, _grad = cross_entropy(logits, labels)
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_uniform_prediction_log_c(self):
        logits = np.zeros((4, 3))
        labels = np.zeros(4, dtype=int)
        loss, _grad = cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(3))

    def test_gradient_is_probs_minus_onehot(self):
        logits = np.array([[1.0, 2.0, 0.5]])
        labels = np.array([1])
        _loss, grad = cross_entropy(logits, labels)
        probs = softmax(logits)[0]
        expected = probs.copy()
        expected[1] -= 1.0
        np.testing.assert_allclose(grad[0], expected)

    def test_mask_excludes_rows(self):
        logits = np.array([[10.0, 0.0], [0.0, 10.0]])
        labels = np.array([1, 1])  # first row is wrong but masked out
        mask = np.array([False, True])
        loss, grad = cross_entropy(logits, labels, mask)
        assert loss == pytest.approx(0.0, abs=1e-3)
        np.testing.assert_array_equal(grad[0], 0.0)

    def test_empty_mask(self):
        logits = np.ones((3, 2))
        labels = np.zeros(3, dtype=int)
        loss, grad = cross_entropy(logits, labels, np.zeros(3, dtype=bool))
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_class_weights_scale_loss(self):
        logits = np.zeros((2, 2))
        labels = np.array([0, 1])
        weights = np.array([2.0, 1.0])
        loss_weighted, _ = cross_entropy(logits, labels, class_weights=weights)
        loss_plain, _ = cross_entropy(logits, labels)
        assert loss_weighted == pytest.approx(1.5 * loss_plain)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=2, max_value=5), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_gradient_numerically(self, n, c, seed):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(n, c))
        labels = rng.integers(0, c, size=n)
        mask = rng.random(n) < 0.8
        _loss, grad = cross_entropy(logits, labels, mask)
        eps = 1e-6
        i = int(rng.integers(0, n))
        j = int(rng.integers(0, c))
        up, down = logits.copy(), logits.copy()
        up[i, j] += eps
        down[i, j] -= eps
        lu, _ = cross_entropy(up, labels, mask)
        ld, _ = cross_entropy(down, labels, mask)
        assert grad[i, j] == pytest.approx((lu - ld) / (2 * eps), abs=1e-6)


class TestL2Penalty:
    def test_zero_strength(self):
        assert l2_penalty([np.ones((3, 3))], 0.0) == 0.0

    def test_value(self):
        assert l2_penalty([np.full((2, 2), 2.0)], 0.1) == pytest.approx(
            0.5 * 0.1 * 16.0
        )
