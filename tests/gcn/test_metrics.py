"""Accuracy, confusion matrices, per-class reports."""

import numpy as np
import pytest

from repro.gcn.metrics import (
    accuracy,
    class_report,
    confusion_matrix,
    mean_and_variance,
)


class TestAccuracy:
    def test_perfect(self):
        y = np.array([0, 1, 2])
        assert accuracy(y, y) == 1.0

    def test_partial(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 2])) == pytest.approx(2 / 3)

    def test_masked(self):
        pred = np.array([0, 9, 9])
        true = np.array([0, 1, 2])
        mask = np.array([True, False, False])
        assert accuracy(pred, true, mask) == 1.0

    def test_empty_mask_is_perfect(self):
        assert accuracy(np.array([1]), np.array([0]), np.array([False])) == 1.0


class TestConfusionMatrix:
    def test_counts(self):
        pred = np.array([0, 0, 1, 1])
        true = np.array([0, 1, 1, 1])
        m = confusion_matrix(pred, true, n_classes=2)
        np.testing.assert_array_equal(m, [[1, 0], [1, 2]])

    def test_trace_is_correct_count(self):
        rng = np.random.default_rng(0)
        true = rng.integers(0, 4, 50)
        pred = rng.integers(0, 4, 50)
        m = confusion_matrix(pred, true, 4)
        assert np.trace(m) == int((pred == true).sum())
        assert m.sum() == 50


class TestClassReport:
    def test_perfect_diagonal(self):
        m = np.diag([5, 3, 2])
        report = class_report(m)
        np.testing.assert_allclose(report.precision, 1.0)
        np.testing.assert_allclose(report.recall, 1.0)
        assert report.macro_f1 == 1.0

    def test_absent_class_zeroed(self):
        m = np.array([[5, 0], [0, 0]])
        report = class_report(m)
        assert report.recall[1] == 0.0
        assert report.support[1] == 0
        assert report.macro_f1 == 1.0  # only present classes averaged

    def test_known_values(self):
        m = np.array([[8, 2], [4, 6]])
        report = class_report(m)
        assert report.precision[0] == pytest.approx(8 / 12)
        assert report.recall[0] == pytest.approx(0.8)


class TestMeanVariance:
    def test_matches_numpy(self):
        values = [0.8, 0.9, 0.85]
        mean, var = mean_and_variance(values)
        assert mean == pytest.approx(np.mean(values))
        assert var == pytest.approx(np.var(values))

    def test_empty(self):
        assert mean_and_variance([]) == (0.0, 0.0)


class TestClassificationReport:
    def test_contains_all_classes(self):
        from repro.gcn.metrics import classification_report

        m = np.array([[8, 2], [1, 9]])
        text = classification_report(m, ("ota", "bias"))
        assert "ota" in text and "bias" in text

    def test_accuracy_line(self):
        from repro.gcn.metrics import classification_report

        m = np.array([[8, 2], [1, 9]])
        text = classification_report(m, ("a", "b"))
        assert "accuracy 85.0% (17/20)" in text

    def test_perfect_matrix(self):
        from repro.gcn.metrics import classification_report

        m = np.diag([5, 5])
        text = classification_report(m, ("a", "b"))
        assert "100.0%" in text

    def test_empty_matrix(self):
        from repro.gcn.metrics import classification_report

        text = classification_report(np.zeros((2, 2), dtype=int), ("a", "b"))
        assert "accuracy 100.0% (0/0)" in text
