"""Optimizers: convergence on convex problems, decay, weight decay."""

import numpy as np
import pytest

from repro.exceptions import ModelConfigError
from repro.gcn.optim import SGD, Adam


def _quadratic_slots(start):
    """One parameter dict with a single vector; loss = ½‖x − 3‖²."""
    params = {"weight": np.array(start, dtype=float)}
    grads = {"weight": np.zeros_like(params["weight"])}
    return params, grads


def _minimize(optimizer, params, grads, steps=300):
    for _ in range(steps):
        grads["weight"][:] = params["weight"] - 3.0
        optimizer.step()
    return params["weight"]


class TestSGD:
    def test_converges_on_quadratic(self):
        params, grads = _quadratic_slots([10.0, -4.0])
        opt = SGD([(params, grads)], lr=0.1, momentum=0.9)
        result = _minimize(opt, params, grads)
        np.testing.assert_allclose(result, 3.0, atol=1e-4)

    def test_momentum_accelerates(self):
        p1, g1 = _quadratic_slots([10.0])
        p2, g2 = _quadratic_slots([10.0])
        plain = SGD([(p1, g1)], lr=0.01, momentum=0.0)
        momentum = SGD([(p2, g2)], lr=0.01, momentum=0.9)
        _minimize(plain, p1, g1, steps=50)
        _minimize(momentum, p2, g2, steps=50)
        assert abs(p2["weight"][0] - 3.0) < abs(p1["weight"][0] - 3.0)

    def test_invalid_lr(self):
        with pytest.raises(ModelConfigError):
            SGD([], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        params, grads = _quadratic_slots([10.0, -4.0])
        opt = Adam([(params, grads)], lr=0.1)
        result = _minimize(opt, params, grads, steps=500)
        np.testing.assert_allclose(result, 3.0, atol=1e-3)

    def test_first_step_size_is_lr(self):
        # With bias correction, |Δx| of the first Adam step ≈ lr.
        params, grads = _quadratic_slots([10.0])
        opt = Adam([(params, grads)], lr=0.5)
        grads["weight"][:] = params["weight"] - 3.0
        before = params["weight"].copy()
        opt.step()
        assert abs(params["weight"][0] - before[0]) == pytest.approx(0.5, rel=1e-3)

    def test_weight_decay_shrinks_weights(self):
        params = {"weight": np.array([5.0])}
        grads = {"weight": np.zeros(1)}
        opt = Adam([(params, grads)], lr=0.1, weight_decay=0.1)
        for _ in range(500):
            grads["weight"][:] = 0.0  # only the decay term acts
            opt.step()
        assert abs(params["weight"][0]) < 0.5

    def test_bias_params_skip_weight_decay(self):
        params = {"bias": np.array([5.0])}
        grads = {"bias": np.zeros(1)}
        opt = Adam([(params, grads)], lr=0.1, weight_decay=0.1)
        for _ in range(50):
            grads["bias"][:] = 0.0
            opt.step()
        assert params["bias"][0] == pytest.approx(5.0)


class TestLrDecay:
    def test_decay_multiplies(self):
        params, grads = _quadratic_slots([1.0])
        opt = SGD([(params, grads)], lr=1.0)
        opt.decay_lr(0.5)
        opt.decay_lr(0.5)
        assert opt.lr == pytest.approx(0.25)
