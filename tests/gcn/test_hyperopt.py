"""Random-search hyperparameter optimization."""

import pytest

from repro.gcn.hyperopt import SearchSpace, random_search
from repro.gcn.model import GCNConfig
from repro.gcn.samples import GraphSample
from repro.gcn.train import TrainConfig
from repro.graph.bipartite import CircuitGraph
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist
from tests.conftest import DIFF_OTA_DECK


@pytest.fixture()
def tiny_samples():
    graph = CircuitGraph.from_circuit(flatten(parse_netlist(DIFF_OTA_DECK)))
    sample = GraphSample.from_graph(
        graph, {"m0": 1, "m1": 1, "m2": 0, "m3": 0, "m4": 0, "m5": 0}, levels=2
    )
    return [sample]


def _base_model():
    return GCNConfig(
        n_classes=2, filter_size=4, channels=(4, 4), fc_size=8, seed=0
    )


def _base_train():
    return TrainConfig(epochs=3, batch_size=1, patience=0)


class TestRandomSearch:
    def test_runs_requested_trials(self, tiny_samples):
        result = random_search(
            _base_model(), _base_train(), tiny_samples, tiny_samples,
            n_trials=3, space=SearchSpace(filter_size=(4,)),
        )
        assert len(result.trials) == 3

    def test_best_has_max_accuracy(self, tiny_samples):
        result = random_search(
            _base_model(), _base_train(), tiny_samples, tiny_samples,
            n_trials=3, space=SearchSpace(filter_size=(4,)),
        )
        assert result.best.val_accuracy == max(
            t.val_accuracy for t in result.trials
        )

    def test_samples_within_space(self, tiny_samples):
        space = SearchSpace(
            lr=(1e-3, 1e-2),
            weight_decay=(1e-6, 1e-5),
            dropout=(0.1,),
            filter_size=(4, 8),
        )
        result = random_search(
            _base_model(), _base_train(), tiny_samples, tiny_samples,
            n_trials=4, space=space, seed=1,
        )
        for trial in result.trials:
            assert 1e-3 <= trial.train_config.lr <= 1e-2
            assert 1e-6 <= trial.train_config.weight_decay <= 1e-5
            assert trial.model_config.dropout == 0.1
            assert trial.model_config.filter_size in (4, 8)

    def test_deterministic_for_seed(self, tiny_samples):
        kwargs = dict(n_trials=2, space=SearchSpace(filter_size=(4,)), seed=42)
        a = random_search(_base_model(), _base_train(), tiny_samples, tiny_samples, **kwargs)
        b = random_search(_base_model(), _base_train(), tiny_samples, tiny_samples, **kwargs)
        assert [t.train_config.lr for t in a.trials] == [
            t.train_config.lr for t in b.trials
        ]
