"""Graclus coarsening and the pooling pyramid."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gcn.coarsening import (
    build_pyramid,
    coarsen_adjacency,
    graclus_matching,
)
from repro.utils.rng import seeded_rng

pytestmark = pytest.mark.property


def _ring(n: int) -> sp.csr_matrix:
    rows = list(range(n)) * 2
    cols = [(i + 1) % n for i in range(n)] + [(i - 1) % n for i in range(n)]
    return sp.csr_matrix((np.ones(2 * n), (rows, cols)), shape=(n, n))


def _random_adj(seed: int, n: int, p: float = 0.3) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((n, n)) < p, k=1)
    return sp.csr_matrix((upper | upper.T).astype(float))


class TestMatching:
    def test_covers_all_vertices(self):
        assign = graclus_matching(_ring(10), seeded_rng(0))
        assert len(assign) == 10
        assert (assign >= 0).all()

    def test_cluster_sizes_at_most_two(self):
        assign = graclus_matching(_ring(11), seeded_rng(1))
        _ids, counts = np.unique(assign, return_counts=True)
        assert counts.max() <= 2

    def test_matched_pairs_are_neighbors(self):
        adj = _random_adj(2, 20)
        assign = graclus_matching(adj, seeded_rng(2))
        dense = adj.toarray()
        for cluster in np.unique(assign):
            members = np.where(assign == cluster)[0]
            if len(members) == 2:
                a, b = members
                assert dense[a, b] > 0

    def test_cluster_ids_contiguous(self):
        assign = graclus_matching(_ring(9), seeded_rng(3))
        ids = np.unique(assign)
        np.testing.assert_array_equal(ids, np.arange(len(ids)))

    def test_deterministic_for_seed(self):
        a = graclus_matching(_ring(16), seeded_rng(7))
        b = graclus_matching(_ring(16), seeded_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_isolated_vertices_become_singletons(self):
        adj = sp.csr_matrix((5, 5))
        assign = graclus_matching(adj, seeded_rng(0))
        assert len(np.unique(assign)) == 5

    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_roughly_halves(self, n, seed):
        adj = _random_adj(seed, n, p=0.5)
        assign = graclus_matching(adj, seeded_rng(seed))
        n_coarse = int(assign.max()) + 1
        assert n_coarse >= (n + 1) // 2  # can't do better than perfect matching
        assert n_coarse <= n


class TestCoarsenAdjacency:
    def test_weights_aggregate(self):
        # Path a-b-c with clusters {a,b},{c}: coarse edge weight 1.
        adj = sp.csr_matrix(
            np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        )
        assign = np.array([0, 0, 1])
        coarse = coarsen_adjacency(adj, assign).toarray()
        np.testing.assert_allclose(coarse, [[0, 1], [1, 0]])

    def test_self_loops_removed(self):
        adj = _ring(6)
        assign = graclus_matching(adj, seeded_rng(0))
        coarse = coarsen_adjacency(adj, assign)
        assert coarse.diagonal().sum() == 0.0

    def test_symmetry_preserved(self):
        adj = _random_adj(5, 15)
        assign = graclus_matching(adj, seeded_rng(5))
        coarse = coarsen_adjacency(adj, assign)
        assert (coarse != coarse.T).nnz == 0


class TestPyramid:
    def test_level_count(self):
        pyramid = build_pyramid(_ring(16), levels=3, rng=seeded_rng(0))
        assert pyramid.n_levels == 4  # original + 3 coarsenings
        assert len(pyramid.assignments) == 3
        assert len(pyramid.laplacians) == 4

    def test_sizes_decrease(self):
        pyramid = build_pyramid(_ring(32), levels=3, rng=seeded_rng(1))
        sizes = pyramid.sizes()
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_stops_at_single_vertex(self):
        pyramid = build_pyramid(_ring(4), levels=10, rng=seeded_rng(2))
        assert pyramid.sizes()[-1] >= 1
        assert pyramid.n_levels <= 11

    def test_laplacians_match_adjacency_shapes(self):
        pyramid = build_pyramid(_ring(12), levels=2, rng=seeded_rng(3))
        for adj, lap in zip(pyramid.adjacencies, pyramid.laplacians):
            assert adj.shape == lap.shape

    def test_assignment_shapes_chain(self):
        pyramid = build_pyramid(_ring(20), levels=2, rng=seeded_rng(4))
        for level, assign in enumerate(pyramid.assignments):
            assert len(assign) == pyramid.adjacencies[level].shape[0]
            assert int(assign.max()) + 1 == pyramid.adjacencies[level + 1].shape[0]

    def test_rescaled_laplacian_spectrum(self):
        pyramid = build_pyramid(_ring(10), levels=2, rng=seeded_rng(5))
        for lap in pyramid.laplacians:
            eigs = np.linalg.eigvalsh(lap.toarray())
            assert eigs.min() >= -1 - 1e-9
            assert eigs.max() <= 1 + 1e-9
