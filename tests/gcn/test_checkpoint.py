"""Checkpoint/resume golden tests.

The contract (ISSUE 7 tentpole): a training run killed at an interior
epoch and resumed from its checkpoint reproduces the uninterrupted
same-seed run *bitwise* — final weights, History curves, and best-epoch
selection.  Same discipline as ``tests/gcn/test_batch.py``: the
reference is the unmodified ``train()`` path, and equality is exact
(``np.array_equal``), not tolerance-based.

Corrupt-checkpoint handling (satellite): truncated, garbage, and
wrong-version envelopes are structured misses — a Diagnostic naming the
path, fallback to an older envelope or fresh training, never a raw
traceback.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro.gcn.checkpoint as checkpoint_module
from repro.datasets.synth import (
    build_samples,
    generate_ota_bias_dataset,
    task_classes,
)
from repro.exceptions import ModelConfigError
from repro.gcn.checkpoint import CheckpointStore
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.optim import Adam, SGD
from repro.gcn.train import FaultTolerance, TrainConfig, train


@pytest.fixture(scope="module")
def pool_samples():
    dataset = generate_ota_bias_dataset(10, seed="ckpt-pool", workers=1)
    return build_samples(dataset, task_classes("ota"), levels=2, workers=1)


@pytest.fixture(scope="module")
def split(pool_samples):
    return pool_samples[:7], pool_samples[7:]


def _model_config(samples, **overrides) -> GCNConfig:
    base = dict(
        n_features=samples[0].features.shape[1],
        n_classes=len(task_classes("ota")),
        n_layers=2,
        filter_size=4,
        channels=(8, 8),
        fc_size=16,
        dropout=0.2,
        seed=1,
    )
    base.update(overrides)
    return GCNConfig(**base)


def _train_config(**overrides) -> TrainConfig:
    base = dict(epochs=8, batch_size=3, seed=5, patience=0)
    base.update(overrides)
    return TrainConfig(**base)


def _assert_states_equal(a: dict, b: dict) -> None:
    assert a.keys() == b.keys()
    for key in a:
        assert np.array_equal(a[key], b[key]), f"state {key} differs"


def _interrupt_and_resume(split, config, train_config, fault_dir, stop_after):
    """Train ``stop_after`` epochs (simulated kill), then resume fresh."""
    tr, val = split
    partial = GCNModel(config)
    train(
        partial, tr, val,
        dataclasses.replace(train_config, epochs=stop_after),
        fault=FaultTolerance(checkpoint_dir=fault_dir),
    )
    resumed = GCNModel(config)
    history = train(
        resumed, tr, val, train_config,
        fault=FaultTolerance(checkpoint_dir=fault_dir),
    )
    return resumed, history


class TestGoldenResume:
    def test_killed_and_resumed_run_is_bitwise_identical(
        self, split, tmp_path
    ):
        tr, val = split
        config = _model_config(tr)
        train_config = _train_config()

        reference = GCNModel(config)
        ref_history = train(reference, tr, val, train_config)

        resumed, history = _interrupt_and_resume(
            split, config, train_config, tmp_path, stop_after=3
        )
        assert history.resumed_from == 3
        _assert_states_equal(reference.state_dict(), resumed.state_dict())
        assert history.train_loss == ref_history.train_loss
        assert history.train_accuracy == ref_history.train_accuracy
        assert history.val_accuracy == ref_history.val_accuracy
        assert history.best_epoch == ref_history.best_epoch
        assert not history.degraded

    def test_resume_preserves_early_stopping_bookkeeping(
        self, split, tmp_path
    ):
        # The patience window must survive the kill: a resumed run may
        # not train past the epoch the uninterrupted run stopped at.
        tr, val = split
        config = _model_config(tr)
        train_config = _train_config(epochs=12, patience=3)

        reference = GCNModel(config)
        ref_history = train(reference, tr, val, train_config)

        resumed, history = _interrupt_and_resume(
            split, config, train_config, tmp_path, stop_after=4
        )
        _assert_states_equal(reference.state_dict(), resumed.state_dict())
        assert history.val_accuracy == ref_history.val_accuracy
        assert history.best_epoch == ref_history.best_epoch

    def test_sgd_state_resumes_bitwise(self, split, tmp_path):
        tr, val = split
        config = _model_config(tr)
        train_config = _train_config(optimizer="sgd", momentum=0.9)

        reference = GCNModel(config)
        ref_history = train(reference, tr, val, train_config)

        resumed, history = _interrupt_and_resume(
            split, config, train_config, tmp_path, stop_after=3
        )
        _assert_states_equal(reference.state_dict(), resumed.state_dict())
        assert history.train_loss == ref_history.train_loss

    def test_fully_complete_checkpoint_resumes_to_identity(
        self, split, tmp_path
    ):
        # Re-running a finished checkpointed run is a no-op resume: no
        # epochs execute, and the best-epoch weights come back intact.
        tr, val = split
        config = _model_config(tr)
        train_config = _train_config()
        fault = FaultTolerance(checkpoint_dir=tmp_path)

        first = GCNModel(config)
        train(first, tr, val, train_config, fault=fault)
        again = GCNModel(config)
        history = train(again, tr, val, train_config, fault=fault)
        assert history.resumed_from == train_config.epochs
        _assert_states_equal(first.state_dict(), again.state_dict())


class TestCheckpointHygiene:
    def test_checkpoint_every_and_final_epoch(self, split, tmp_path):
        tr, val = split
        config = _model_config(tr)
        train(
            GCNModel(config), tr, val, _train_config(epochs=7),
            fault=FaultTolerance(
                checkpoint_dir=tmp_path, checkpoint_every=2, keep=10
            ),
        )
        store = CheckpointStore(tmp_path)
        epochs = [int(p.name.split("-")[1].split(".")[0]) for p in store.paths()]
        # Every other epoch, plus the final epoch unconditionally.
        assert epochs == [2, 4, 6, 7]

    def test_prune_keeps_newest(self, split, tmp_path):
        tr, val = split
        config = _model_config(tr)
        train(
            GCNModel(config), tr, val, _train_config(epochs=6),
            fault=FaultTolerance(checkpoint_dir=tmp_path, keep=2),
        )
        store = CheckpointStore(tmp_path, keep=2)
        assert [p.name for p in store.paths()] == [
            "epoch-00005.ckpt.npz",
            "epoch-00006.ckpt.npz",
        ]

    def test_invalid_checkpoint_every_rejected(self, split, tmp_path):
        tr, val = split
        with pytest.raises(ModelConfigError, match="checkpoint_every"):
            train(
                GCNModel(_model_config(tr)), tr, val, _train_config(),
                fault=FaultTolerance(
                    checkpoint_dir=tmp_path, checkpoint_every=0
                ),
            )


class TestCorruptCheckpoints:
    def test_truncated_newest_falls_back_to_older(self, split, tmp_path):
        # Torn write on the newest envelope: resume walks back to the
        # previous good one and still reproduces the reference bitwise.
        tr, val = split
        config = _model_config(tr)
        train_config = _train_config()

        reference = GCNModel(config)
        train(reference, tr, val, train_config)

        train(
            GCNModel(config), tr, val,
            dataclasses.replace(train_config, epochs=4),
            fault=FaultTolerance(checkpoint_dir=tmp_path, keep=4),
        )
        newest = CheckpointStore(tmp_path).paths()[-1]
        newest.write_bytes(newest.read_bytes()[: newest.stat().st_size // 3])

        resumed = GCNModel(config)
        history = train(
            resumed, tr, val, train_config,
            fault=FaultTolerance(checkpoint_dir=tmp_path, keep=4),
        )
        assert history.resumed_from == 3  # fell back past epoch 4
        assert any(
            str(newest) in (d.hint or "") for d in history.diagnostics
        )
        assert not newest.exists()  # bad envelope evicted
        _assert_states_equal(reference.state_dict(), resumed.state_dict())

    def test_garbage_checkpoint_starts_fresh(self, split, tmp_path):
        tr, val = split
        config = _model_config(tr)
        (tmp_path / "epoch-00003.ckpt.npz").write_bytes(b"not an npz at all")

        reference = GCNModel(config)
        ref_history = train(reference, tr, val, _train_config())

        model = GCNModel(config)
        history = train(
            model, tr, val, _train_config(),
            fault=FaultTolerance(checkpoint_dir=tmp_path),
        )
        assert history.resumed_from is None  # fresh start
        assert history.diagnostics  # ... but a structured record of why
        assert "epoch-00003" in (history.diagnostics[0].hint or "")
        _assert_states_equal(reference.state_dict(), model.state_dict())
        assert history.train_loss == ref_history.train_loss

    def test_wrong_format_version_is_a_miss(
        self, split, tmp_path, monkeypatch
    ):
        tr, val = split
        config = _model_config(tr)
        # Write envelopes stamped with a future format version...
        monkeypatch.setattr(
            checkpoint_module, "CHECKPOINT_FORMAT_VERSION", 99
        )
        train(
            GCNModel(config), tr, val, _train_config(epochs=3),
            fault=FaultTolerance(checkpoint_dir=tmp_path),
        )
        monkeypatch.undo()
        # ... which the current reader must treat as a miss.
        diagnostics: list = []
        store = CheckpointStore(tmp_path)
        assert store.load_latest(_config_dict(config), diagnostics) is None
        assert diagnostics
        assert "format version" in diagnostics[0].message

    def test_other_models_checkpoints_are_ignored(self, split, tmp_path):
        # Same directory, different architecture: miss without eviction
        # (the envelopes belong to the other run).
        tr, val = split
        train(
            GCNModel(_model_config(tr)), tr, val, _train_config(epochs=3),
            fault=FaultTolerance(checkpoint_dir=tmp_path),
        )
        n_envelopes = len(CheckpointStore(tmp_path).paths())
        other = _model_config(tr, channels=(4, 4))
        history = train(
            GCNModel(other), tr, val, _train_config(epochs=2),
            fault=FaultTolerance(checkpoint_dir=tmp_path, keep=50),
        )
        assert history.resumed_from is None
        assert any(
            "different model config" in d.message
            for d in history.diagnostics
        )
        # The foreign envelopes were not deleted.
        store = CheckpointStore(tmp_path, keep=50)
        assert len(store.paths()) >= n_envelopes


def _config_dict(config: GCNConfig) -> dict:
    raw = dataclasses.asdict(config)
    raw["channels"] = list(raw["channels"])
    return raw


class TestOptimizerStateDicts:
    def _slots(self):
        rng = np.random.default_rng(0)
        params = {"weight": rng.normal(size=(4, 3)), "bias": rng.normal(size=3)}
        grads = {"weight": rng.normal(size=(4, 3)), "bias": rng.normal(size=3)}
        return [(params, grads)]

    def test_adam_roundtrip_is_bitwise(self):
        slots = self._slots()
        source = Adam(slots, lr=1e-2)
        source.step()
        source.step()
        state = source.state_dict()

        twin = Adam(self._slots(), lr=1e-2)
        twin.load_state_dict(state)
        assert twin.t == source.t
        assert twin.lr == source.lr
        assert np.array_equal(twin.m, source.m)
        assert np.array_equal(twin.v, source.v)
        # Exported arrays are copies, not views of live state.
        source.step()
        assert not np.array_equal(state["m"], source.m)

    def test_sgd_roundtrip_is_bitwise(self):
        slots = self._slots()
        source = SGD(slots, lr=1e-2, momentum=0.9)
        source.step()
        state = source.state_dict()

        twin = SGD(self._slots(), lr=1e-2, momentum=0.9)
        twin.load_state_dict(state)
        assert twin.lr == source.lr
        for a, b in zip(twin.velocity, source.velocity):
            for key in a:
                assert np.array_equal(a[key], b[key])

    def test_kind_mismatch_rejected(self):
        adam = Adam(self._slots(), lr=1e-2)
        sgd = SGD(self._slots(), lr=1e-2)
        with pytest.raises(ModelConfigError, match="expected 'adam'"):
            adam.load_state_dict(sgd.state_dict())
        with pytest.raises(ModelConfigError, match="expected 'sgd'"):
            sgd.load_state_dict(adam.state_dict())


class TestModelRngStates:
    def test_dropout_stream_roundtrip(self, split):
        tr, _ = split
        model = GCNModel(_model_config(tr))
        states = model.rng_states()
        assert states  # the head has a dropout layer
        # Drawing advances the stream; restoring rewinds it.
        model.forward(tr[0], training=True)
        advanced = model.rng_states()
        assert advanced != states
        model.set_rng_states(states)
        assert model.rng_states() == states

    def test_state_count_mismatch_rejected(self, split):
        tr, _ = split
        model = GCNModel(_model_config(tr))
        with pytest.raises(ModelConfigError, match="dropout RNG states"):
            model.set_rng_states([])
