"""Chebyshev filter machinery: recurrence, spectral equivalence, adjoint."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gcn.chebyshev import (
    chebyshev_basis,
    chebyshev_basis_backward,
    chebyshev_polynomial,
    filter_signal,
)
from repro.graph.laplacian import (
    fourier_basis,
    normalized_laplacian,
    rescaled_laplacian,
)

pytestmark = pytest.mark.property


def _ring(n: int) -> sp.csr_matrix:
    rows = list(range(n)) * 2
    cols = [(i + 1) % n for i in range(n)] + [(i - 1) % n for i in range(n)]
    return sp.csr_matrix((np.ones(2 * n), (rows, cols)), shape=(n, n))


class TestPolynomial:
    @given(st.integers(min_value=0, max_value=12), st.floats(min_value=-1, max_value=1))
    @settings(max_examples=100, deadline=None)
    def test_closed_form_on_interval(self, k, x):
        """T_k(cos θ) = cos(k θ) on [-1, 1]."""
        theta = np.arccos(np.clip(x, -1, 1))
        assert chebyshev_polynomial(k, float(np.cos(theta))) == pytest.approx(
            float(np.cos(k * theta)), abs=1e-9
        )

    def test_first_orders(self):
        assert chebyshev_polynomial(0, 0.3) == 1.0
        assert chebyshev_polynomial(1, 0.3) == 0.3
        assert chebyshev_polynomial(2, 0.3) == pytest.approx(2 * 0.3**2 - 1)

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            chebyshev_polynomial(-1, 0.5)

    def test_elementwise_on_arrays(self):
        x = np.linspace(-1, 1, 11)
        t3 = chebyshev_polynomial(3, x)
        np.testing.assert_allclose(t3, 4 * x**3 - 3 * x, atol=1e-12)


class TestBasis:
    def test_order_one_is_input(self):
        lap = rescaled_laplacian(normalized_laplacian(_ring(5)))
        x = np.arange(10.0).reshape(5, 2)
        basis = chebyshev_basis(lap, x, order=1)
        np.testing.assert_array_equal(basis[0], x)

    def test_recurrence_matches_matrix_power_formula(self):
        lap = rescaled_laplacian(normalized_laplacian(_ring(6)))
        dense = lap.toarray()
        x = np.random.default_rng(0).normal(size=(6, 3))
        basis = chebyshev_basis(lap, x, order=5)
        # Direct dense evaluation of T_k(L̂) via the same recurrence on
        # matrices (independent code path).
        t_prev, t_cur = np.eye(6), dense
        np.testing.assert_allclose(basis[0], x)
        np.testing.assert_allclose(basis[1], dense @ x)
        for k in range(2, 5):
            t_prev, t_cur = t_cur, 2 * dense @ t_cur - t_prev
            np.testing.assert_allclose(basis[k], t_cur @ x, atol=1e-10)

    def test_invalid_order(self):
        lap = rescaled_laplacian(normalized_laplacian(_ring(4)))
        with pytest.raises(ValueError):
            chebyshev_basis(lap, np.zeros((4, 1)), order=0)


class TestSpectralEquivalence:
    def test_eq5_matches_eq2(self):
        """The Chebyshev evaluation (Eq. 5) equals the dense Fourier
        evaluation U g(Λ) Uᵀ x (Eq. 2) for the same polynomial g."""
        adj = _ring(8)
        eigenvalues, u = fourier_basis(adj)
        lap = normalized_laplacian(adj)
        lmax = 2.0
        rescaled = rescaled_laplacian(lap, lmax=lmax)
        rng = np.random.default_rng(1)
        theta = rng.normal(size=6)
        x = rng.normal(size=8)

        fast = filter_signal(rescaled, x, theta)

        scaled_eigs = 2.0 * eigenvalues / lmax - 1.0
        g = sum(
            theta[k] * chebyshev_polynomial(k, scaled_eigs) for k in range(6)
        )
        dense = u @ np.diag(g) @ u.T @ x
        np.testing.assert_allclose(fast, dense, atol=1e-9)

    def test_identity_filter(self):
        lap = rescaled_laplacian(normalized_laplacian(_ring(5)))
        x = np.arange(5.0)
        np.testing.assert_allclose(filter_signal(lap, x, np.array([1.0])), x)


class TestBackward:
    def test_adjoint_property(self):
        """⟨basis(x), G⟩ = ⟨x, backward(G)⟩ — the defining property of
        the reverse-mode pass."""
        rng = np.random.default_rng(2)
        lap = rescaled_laplacian(normalized_laplacian(_ring(7)))
        x = rng.normal(size=(7, 3))
        grad = rng.normal(size=(5, 7, 3))
        basis = chebyshev_basis(lap, x, order=5)
        lhs = float((basis * grad).sum())
        back = chebyshev_basis_backward(lap, grad)
        # lhs is linear in x: <basis(x), G> = <x, J^T G> exactly.
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_numerical_jacobian(self):
        rng = np.random.default_rng(3)
        lap = rescaled_laplacian(normalized_laplacian(_ring(4)))
        x = rng.normal(size=(4, 2))
        grad = rng.normal(size=(4, 4, 2))

        def scalar(x_flat):
            basis = chebyshev_basis(lap, x_flat.reshape(4, 2), order=4)
            return float((basis * grad).sum())

        analytic = chebyshev_basis_backward(lap, grad).ravel()
        eps = 1e-6
        numeric = np.zeros_like(analytic)
        flat = x.ravel().copy()
        for i in range(flat.size):
            up, down = flat.copy(), flat.copy()
            up[i] += eps
            down[i] -= eps
            numeric[i] = (scalar(up) - scalar(down)) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_order_one_backward(self):
        lap = rescaled_laplacian(normalized_laplacian(_ring(4)))
        grad = np.ones((1, 4, 2))
        out = chebyshev_basis_backward(lap, grad)
        np.testing.assert_array_equal(out, grad[0])
