"""Training loop: overfitting, early stopping, cross-validation."""

import numpy as np
import pytest

from repro.exceptions import ModelConfigError
from repro.gcn.model import GCNConfig, GCNModel
from repro.gcn.samples import (
    GraphSample,
    class_weights,
    kfold_indices,
    train_validation_split,
)
from repro.gcn.train import (
    TrainConfig,
    cross_validate,
    evaluate,
    evaluate_confusion,
    train,
)
from repro.graph.bipartite import CircuitGraph
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist
from tests.conftest import CURRENT_MIRROR_DECK, DIFF_OTA_DECK


def _sample(deck: str, labels: dict[str, int]) -> GraphSample:
    graph = CircuitGraph.from_circuit(flatten(parse_netlist(deck)))
    return GraphSample.from_graph(graph, labels, levels=2)


@pytest.fixture()
def samples() -> list[GraphSample]:
    ota = _sample(
        DIFF_OTA_DECK, {"m0": 1, "m1": 1, "m2": 0, "m3": 0, "m4": 0, "m5": 0}
    )
    cm = _sample(CURRENT_MIRROR_DECK, {"m0": 1, "m1": 1})
    return [ota, cm]


def _config() -> GCNConfig:
    return GCNConfig(
        n_classes=2, filter_size=4, channels=(8, 8), fc_size=16,
        dropout=0.0, batch_norm=True, seed=0,
    )


class TestTrain:
    def test_overfits_tiny_set(self, samples):
        model = GCNModel(_config())
        history = train(
            model, samples, config=TrainConfig(epochs=80, batch_size=2, lr=5e-3, patience=0)
        )
        assert history.train_accuracy[-1] == 1.0

    def test_loss_decreases(self, samples):
        model = GCNModel(_config())
        history = train(
            model, samples, config=TrainConfig(epochs=40, batch_size=2, lr=3e-3, patience=0)
        )
        assert history.train_loss[-1] < history.train_loss[0]

    def test_validation_history_recorded(self, samples):
        model = GCNModel(_config())
        history = train(
            model, samples, samples, TrainConfig(epochs=10, patience=0)
        )
        assert len(history.val_accuracy) == 10
        assert history.best_epoch >= 0

    def test_early_stopping_halts(self, samples):
        model = GCNModel(_config())
        history = train(
            model,
            samples,
            samples,
            TrainConfig(epochs=500, batch_size=2, lr=5e-3, patience=3),
        )
        assert len(history.val_accuracy) < 500

    def test_best_state_restored(self, samples):
        model = GCNModel(_config())
        history = train(
            model, samples, samples, TrainConfig(epochs=30, lr=5e-3, patience=10)
        )
        final = evaluate(model, samples)
        assert final == pytest.approx(max(history.val_accuracy))

    def test_empty_training_set_rejected(self):
        with pytest.raises(ModelConfigError):
            train(GCNModel(_config()), [], config=TrainConfig(epochs=1))

    def test_unknown_optimizer_rejected(self, samples):
        with pytest.raises(ModelConfigError):
            train(
                GCNModel(_config()),
                samples,
                config=TrainConfig(epochs=1, optimizer="lbfgs"),
            )

    def test_sgd_path(self, samples):
        model = GCNModel(_config())
        history = train(
            model,
            samples,
            config=TrainConfig(epochs=30, optimizer="sgd", lr=1e-2, patience=0),
        )
        assert history.train_loss[-1] < history.train_loss[0]

    def test_deterministic_given_seed(self, samples):
        h1 = train(GCNModel(_config()), samples, config=TrainConfig(epochs=5, patience=0))
        h2 = train(GCNModel(_config()), samples, config=TrainConfig(epochs=5, patience=0))
        np.testing.assert_allclose(h1.train_loss, h2.train_loss)


class TestEvaluate:
    def test_confusion_shape(self, samples):
        model = GCNModel(_config())
        matrix = evaluate_confusion(model, samples, 2)
        assert matrix.shape == (2, 2)
        assert matrix.sum() == sum(int(s.mask.sum()) for s in samples)

    def test_accuracy_range(self, samples):
        model = GCNModel(_config())
        assert 0.0 <= evaluate(model, samples) <= 1.0


class TestSplits:
    def test_split_fractions(self):
        samples = [None] * 10  # split only shuffles indices
        train_set, val_set = train_validation_split(list(range(10)), 0.2)
        assert len(val_set) == 2
        assert len(train_set) == 8
        assert sorted(train_set + val_set) == list(range(10))

    def test_kfold_covers_everything(self):
        folds = kfold_indices(17, 5)
        combined = np.sort(np.concatenate(folds))
        np.testing.assert_array_equal(combined, np.arange(17))

    def test_kfold_disjoint(self):
        folds = kfold_indices(20, 4)
        seen = set()
        for fold in folds:
            as_set = set(fold.tolist())
            assert not (as_set & seen)
            seen |= as_set

    def test_class_weights_balance(self, samples):
        ota = samples[:1]  # 4 devices of class 0 vs 2 of class 1
        weights = class_weights(ota, 2)
        assert weights.shape == (2,)
        assert weights.mean() == pytest.approx(1.0)
        assert weights[0] < weights[1]  # majority class weighs less


class TestCrossValidate:
    def test_returns_fold_accuracies(self, samples):
        accuracies = cross_validate(
            _config(),
            samples * 3,  # six samples over 3 folds
            folds=3,
            train_config=TrainConfig(epochs=3, patience=0),
        )
        assert len(accuracies) == 3
        assert all(0.0 <= a <= 1.0 for a in accuracies)
