"""GraphSample construction and masking."""

import numpy as np
import pytest

from repro.gcn.samples import GraphSample
from repro.graph.bipartite import CircuitGraph
from repro.spice.flatten import flatten
from repro.spice.parser import parse_netlist
from tests.conftest import DIFF_OTA_DECK


@pytest.fixture()
def graph():
    return CircuitGraph.from_circuit(flatten(parse_netlist(DIFF_OTA_DECK)))


class TestFromGraph:
    def test_labels_and_mask(self, graph):
        sample = GraphSample.from_graph(graph, {"m0": 1, "voutp": 0}, levels=2)
        m0 = graph.element_vertex("m0")
        voutp = graph.net_vertex("voutp")
        assert sample.labels[m0] == 1
        assert sample.labels[voutp] == 0
        assert sample.mask[m0] and sample.mask[voutp]

    def test_unlabeled_masked_out(self, graph):
        sample = GraphSample.from_graph(graph, {"m0": 1}, levels=2)
        assert int(sample.mask.sum()) == 1
        assert (sample.labels[~sample.mask] == -1).all()

    def test_feature_shape(self, graph):
        sample = GraphSample.from_graph(graph, {}, levels=2)
        assert sample.features.shape == (graph.n_vertices, 18)
        assert sample.n_vertices == graph.n_vertices

    def test_pyramid_levels(self, graph):
        sample = GraphSample.from_graph(graph, {}, levels=3)
        assert len(sample.pyramid.assignments) == 3

    def test_context_resets_level(self, graph):
        sample = GraphSample.from_graph(graph, {}, levels=2)
        ctx = sample.context()
        assert ctx.level == 0
        ctx.level = 2
        assert sample.context().level == 0

    def test_deterministic_coarsening_per_seed(self, graph):
        a = GraphSample.from_graph(graph, {}, levels=2, seed=1)
        b = GraphSample.from_graph(graph, {}, levels=2, seed=1)
        for x, y in zip(a.pyramid.assignments, b.pyramid.assignments):
            np.testing.assert_array_equal(x, y)

    def test_keep_graph_flag(self, graph):
        sample = GraphSample.from_graph(graph, {}, levels=1, keep_graph=False)
        assert sample.graph is None
