"""Utilities and package-level plumbing."""

import numpy as np
import pytest

import repro
import repro.core
from repro.utils.rng import seeded_rng, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_differs_by_part(self):
        assert stable_hash("a", 1) != stable_hash("a", 2)

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_nonnegative_63_bit(self):
        value = stable_hash("anything")
        assert 0 <= value < 2**63

    def test_no_concatenation_collision(self):
        # ("ab", "c") must differ from ("a", "bc") — the separator byte.
        assert stable_hash("ab", "c") != stable_hash("a", "bc")


class TestSeededRng:
    def test_int_seed(self):
        a = seeded_rng(7).random(3)
        b = seeded_rng(7).random(3)
        np.testing.assert_array_equal(a, b)

    def test_string_seed(self):
        a = seeded_rng("hello").random(3)
        b = seeded_rng("hello").random(3)
        np.testing.assert_array_equal(a, b)

    def test_tuple_seed(self):
        a = seeded_rng(("task", 3)).random()
        b = seeded_rng(("task", 3)).random()
        assert a == b

    def test_different_seeds_differ(self):
        assert seeded_rng("x").random() != seeded_rng("y").random()


class TestPackagePlumbing:
    def test_version(self):
        assert repro.__version__

    def test_lazy_top_level_import(self):
        assert repro.GanaPipeline is not None

    def test_top_level_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.no_such_thing

    def test_core_lazy_exports(self):
        assert repro.core.GanaPipeline is not None
        assert repro.core.validate_constraints is not None

    def test_core_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.core.no_such_thing

    def test_core_dir_lists_exports(self):
        assert "GanaPipeline" in dir(repro.core)
        assert "annotate_systems" in dir(repro.core)
