"""Circuit builder and net-label derivation."""

import pytest

from repro.datasets.components import (
    GND,
    VDD,
    CircuitBuilder,
    derive_net_labels,
)
from repro.exceptions import DatasetError
from repro.graph.bipartite import CircuitGraph
from repro.spice.netlist import DeviceKind


class TestBuilder:
    def test_fresh_names_unique(self):
        b = CircuitBuilder("t")
        names = {b.fresh("m") for _ in range(20)}
        assert len(names) == 20

    def test_duplicate_name_rejected(self):
        b = CircuitBuilder("t")
        b.nmos("m1", d="a", g="b", s="c")
        with pytest.raises(DatasetError):
            b.nmos("m1", d="x", g="y", s="z")

    def test_labels_recorded(self):
        b = CircuitBuilder("t")
        b.nmos("m1", d="a", g="b", s="c", label="ota")
        b.resistor("r1", p="a", n="b", value=1e3)
        assert b.device_labels == {"m1": "ota"}

    def test_diff_pair_structure(self):
        b = CircuitBuilder("t")
        a, c = b.diff_pair(
            inp="ip", inn="in_", out1="o1", out2="o2", tail="t", label="x"
        )
        da, dc = b.circuit.device(a), b.circuit.device(c)
        assert da.pin_map["s"] == dc.pin_map["s"] == "t"
        assert da.pin_map["g"] == "ip"
        assert dc.pin_map["g"] == "in_"

    def test_current_mirror_diode_plus_outputs(self):
        b = CircuitBuilder("t")
        names = b.current_mirror(ref="r", outs=("o1", "o2"), rail=GND)
        assert len(names) == 3
        diode = b.circuit.device(names[0])
        assert diode.pin_map["d"] == diode.pin_map["g"] == "r"

    def test_cascode_mirror_four_devices(self):
        b = CircuitBuilder("t")
        names = b.cascode_mirror(ref="r", out="o", rail=GND)
        assert len(names) == 4

    def test_cross_coupled_pair(self):
        b = CircuitBuilder("t")
        a, c = b.cross_coupled_pair(d1="x", d2="y", s="t")
        da, dc = b.circuit.device(a), b.circuit.device(c)
        assert da.pin_map["g"] == dc.pin_map["d"]
        assert dc.pin_map["g"] == da.pin_map["d"]

    def test_inverter_polarities(self):
        b = CircuitBuilder("t")
        n, p = b.inverter(inp="i", out="o")
        assert b.circuit.device(n).kind is DeviceKind.NMOS
        assert b.circuit.device(p).kind is DeviceKind.PMOS
        assert b.circuit.device(n).pin_map["s"] == GND
        assert b.circuit.device(p).pin_map["s"] == VDD

    def test_rc_compensation_internal_node(self):
        b = CircuitBuilder("t")
        r, c = b.rc_compensation(a="x", b="y")
        mid = b.circuit.device(r).pin_map["n"]
        assert b.circuit.device(c).pin_map["p"] == mid
        assert mid not in ("x", "y")

    def test_current_reference_polarities(self):
        b = CircuitBuilder("t")
        _r, m = b.current_reference(ref="vb", polarity="n")
        dev = b.circuit.device(m)
        assert dev.pin_map["d"] == dev.pin_map["g"] == "vb"
        assert dev.pin_map["s"] == GND

    def test_finish_validates_labels(self):
        b = CircuitBuilder("t")
        b.nmos("m1", d="a", g="b", s="c", label="weird")
        with pytest.raises(DatasetError):
            b.finish(class_names=("ota", "bias"))

    def test_finish_packages_everything(self):
        b = CircuitBuilder("t", ports=("a",))
        b.nmos("m1", d="a", g="b", s=GND, label="ota")
        b.mark_port("a", "antenna")
        lc = b.finish(class_names=("ota", "bias"))
        assert lc.device_labels == {"m1": "ota"}
        assert lc.port_labels == {"a": "antenna"}
        assert lc.n_devices == 1


class TestNetLabelDerivation:
    def test_unanimous_net_labeled(self):
        b = CircuitBuilder("t")
        b.nmos("m1", d="x", g="i1", s=GND, label="ota")
        b.nmos("m2", d="x", g="i2", s=GND, label="ota")
        graph = CircuitGraph.from_circuit(b.circuit)
        labels = derive_net_labels(graph, b.device_labels)
        assert labels["x"] == "ota"

    def test_boundary_net_excluded(self):
        b = CircuitBuilder("t")
        b.nmos("m1", d="x", g="i", s=GND, label="ota")
        b.nmos("m2", d="y", g="x", s=GND, label="bias")
        graph = CircuitGraph.from_circuit(b.circuit)
        labels = derive_net_labels(graph, b.device_labels)
        assert "x" not in labels

    def test_power_nets_excluded(self):
        b = CircuitBuilder("t")
        b.nmos("m1", d="x", g="i", s=GND, label="ota")
        graph = CircuitGraph.from_circuit(b.circuit)
        labels = derive_net_labels(graph, b.device_labels)
        assert GND not in labels

    def test_unlabeled_devices_ignored(self):
        b = CircuitBuilder("t")
        b.nmos("m1", d="x", g="i", s=GND, label="ota")
        b.resistor("r1", p="x", n="q", value=1e3)  # no label
        graph = CircuitGraph.from_circuit(b.circuit)
        labels = derive_net_labels(graph, b.device_labels)
        assert labels["x"] == "ota"

    def test_truth_combines_devices_and_nets(self):
        b = CircuitBuilder("t")
        b.nmos("m1", d="x", g="i", s=GND, label="ota")
        lc = b.finish(class_names=("ota", "bias"))
        truth = lc.truth()
        assert truth["m1"] == "ota"
        assert truth["x"] == "ota"
