"""OTA / RF / system generators: structure, labels, CCC separation."""

import pytest

from repro.datasets.components import LabeledCircuit
from repro.datasets.ota import (
    OTA_CLASSES,
    TOPOLOGIES,
    OtaSpec,
    generate_ota,
    ota_variants,
)
from repro.datasets.rf import (
    LNA_TOPOLOGIES,
    MIXER_TOPOLOGIES,
    OSC_TOPOLOGIES,
    ReceiverSpec,
    generate_receiver,
    generate_single_block,
    receiver_variants,
)
from repro.datasets.systems import phased_array, sample_and_hold, switched_cap_filter
from repro.exceptions import DatasetError
from repro.graph.bipartite import CircuitGraph
from repro.graph.ccc import channel_connected_components


def _ccc_classes_pure(lc: LabeledCircuit) -> bool:
    """True when no CCC mixes devices of different truth classes."""
    graph = CircuitGraph.from_circuit(lc.circuit)
    partition = channel_connected_components(graph)
    for members in partition.components:
        classes = {
            lc.device_labels[graph.elements[i].name]
            for i in members
            if graph.elements[i].name in lc.device_labels
        }
        if len(classes) > 1:
            return False
    return True


class TestOtaGenerator:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("polarity", ["n", "p"])
    def test_every_topology_builds(self, topology, polarity):
        lc = generate_ota(OtaSpec(topology=topology, polarity=polarity))
        assert lc.n_devices >= 8
        assert set(lc.device_labels.values()) <= set(OTA_CLASSES)

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_signal_bias_ccc_separation(self, topology):
        """The property Post-I depends on: no CCC mixes ota and bias."""
        lc = generate_ota(OtaSpec(topology=topology))
        assert _ccc_classes_pure(lc)

    def test_has_both_classes(self):
        lc = generate_ota(OtaSpec())
        assert set(lc.device_labels.values()) == {"ota", "bias"}

    def test_unknown_topology_rejected(self):
        with pytest.raises(DatasetError):
            OtaSpec(topology="quantum")

    def test_unknown_polarity_rejected(self):
        with pytest.raises(DatasetError):
            OtaSpec(polarity="x")

    def test_deterministic(self):
        a = generate_ota(OtaSpec(size_seed=3))
        b = generate_ota(OtaSpec(size_seed=3))
        assert [d.name for d in a.circuit.devices] == [
            d.name for d in b.circuit.devices
        ]
        assert a.device_labels == b.device_labels

    def test_variants_cover_topologies(self):
        specs = ota_variants(120, seed="cover")
        assert {s.topology for s in specs} == set(TOPOLOGIES)
        assert {s.polarity for s in specs} == {"n", "p"}

    def test_sc_input_variant(self):
        lc = generate_ota(OtaSpec(with_sc_input=True))
        names = [d.name for d in lc.circuit.devices]
        assert any(n.startswith("msw") for n in names)
        assert _ccc_classes_pure(lc)

    def test_input_buffer_variant(self):
        lc = generate_ota(OtaSpec(with_input_buffer=True))
        names = [d.name for d in lc.circuit.devices]
        assert any(n.startswith("mbuf") for n in names)


class TestRfGenerators:
    @pytest.mark.parametrize("topology", LNA_TOPOLOGIES)
    def test_lna_blocks(self, topology):
        lc = generate_single_block("lna", topology, seed=0)
        assert set(lc.device_labels.values()) == {"lna"}
        assert lc.port_labels.get("rfin") == "antenna"

    @pytest.mark.parametrize("topology", MIXER_TOPOLOGIES)
    def test_mixer_blocks(self, topology):
        lc = generate_single_block("mixer", topology, seed=0)
        assert set(lc.device_labels.values()) == {"mixer"}
        assert "oscillating" in lc.port_labels.values()

    @pytest.mark.parametrize("topology", OSC_TOPOLOGIES)
    def test_osc_blocks(self, topology):
        lc = generate_single_block("osc", topology, seed=0)
        assert set(lc.device_labels.values()) == {"osc"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(DatasetError):
            generate_single_block("pll", "x", seed=0)

    @pytest.mark.parametrize("mixer", MIXER_TOPOLOGIES)
    @pytest.mark.parametrize("osc", OSC_TOPOLOGIES)
    def test_receivers_build_and_separate(self, mixer, osc):
        spec = ReceiverSpec(mixer_topology=mixer, osc_topology=osc)
        lc = generate_receiver(spec)
        assert set(lc.device_labels.values()) == {"lna", "mixer", "osc"}
        assert _ccc_classes_pure(lc)

    def test_receiver_port_labels(self):
        lc = generate_receiver(ReceiverSpec())
        assert lc.port_labels["rfin"] == "antenna"
        assert lc.port_labels["lo_p"] == "oscillating"

    def test_variants_deterministic(self):
        a = receiver_variants(10, seed="s")
        b = receiver_variants(10, seed="s")
        assert a == b


class TestSystems:
    def test_switched_cap_filter_size(self):
        lc = switched_cap_filter()
        graph = CircuitGraph.from_circuit(lc.circuit)
        # Paper: 32 devices + 25 nets = 57 nodes; ours lands close.
        assert 25 <= graph.n_elements <= 40
        assert 40 <= graph.n_vertices <= 65

    def test_switched_cap_filter_classes(self):
        lc = switched_cap_filter()
        assert set(lc.device_labels.values()) == {"ota", "bias"}
        assert _ccc_classes_pure(lc)

    def test_sample_and_hold_builds(self):
        lc = sample_and_hold()
        assert lc.n_devices >= 25
        assert _ccc_classes_pure(lc)

    def test_phased_array_size(self):
        lc = phased_array()
        graph = CircuitGraph.from_circuit(lc.circuit)
        # Paper: 522 devices + 380 nets = 902 vertices.
        assert 450 <= graph.n_elements <= 600
        assert 700 <= graph.n_vertices <= 1000

    def test_phased_array_classes(self):
        lc = phased_array()
        assert set(lc.device_labels.values()) == {
            "lna", "mixer", "osc", "bpf", "buf", "inv",
        }

    def test_phased_array_ccc_separation(self):
        assert _ccc_classes_pure(phased_array())

    def test_phased_array_port_labels(self):
        lc = phased_array(n_channels=2)
        antennas = [n for n, l in lc.port_labels.items() if l == "antenna"]
        assert len(antennas) == 2
        assert any(l == "oscillating" for l in lc.port_labels.values())

    def test_channel_scaling(self):
        small = phased_array(n_channels=2)
        large = phased_array(n_channels=4)
        assert large.n_devices > small.n_devices
