"""Perturbation utilities and preprocessing invariance."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.ota import TOPOLOGIES, OtaSpec, generate_ota
from repro.datasets.perturb import (
    add_decaps,
    add_dummies,
    perturb_all,
    split_parallel,
    stack_series,
)
from repro.graph.bipartite import CircuitGraph
from repro.spice.preprocess import preprocess

pytestmark = pytest.mark.property


@pytest.fixture()
def clean():
    return generate_ota(OtaSpec(topology="five_transistor"), name="clean")


class TestPerturbations:
    def test_split_parallel_adds_devices(self, clean):
        perturbed = split_parallel(clean, fraction=1.0)
        n_transistors = sum(
            1 for d in clean.circuit.devices if d.kind.is_transistor
        )
        assert perturbed.n_devices == clean.n_devices + n_transistors

    def test_split_halves_multiplier(self, clean):
        perturbed = split_parallel(clean, fraction=1.0)
        original = clean.circuit.devices[-1]
        for dev in perturbed.circuit.devices:
            if dev.name.endswith("__p2"):
                base = perturbed.circuit.device(dev.name[: -len("__p2")])
                assert dev.param("m") == base.param("m")

    def test_stack_series_introduces_mid_nets(self, clean):
        perturbed = stack_series(clean, fraction=1.0)
        assert any("__mid" in n for n in perturbed.circuit.nets)

    def test_dummies_unlabeled(self, clean):
        perturbed = add_dummies(clean, count=4)
        assert perturbed.n_devices == clean.n_devices + 4
        assert not any(
            n.startswith("mdummy") for n in perturbed.device_labels
        )

    def test_decaps_between_rails(self, clean):
        perturbed = add_decaps(clean, count=2)
        for dev in perturbed.circuit.devices:
            if dev.name.startswith("cdecap"):
                assert set(dev.nets) == {"vdd!", "gnd!"}

    def test_labels_preserved_for_clones(self, clean):
        perturbed = split_parallel(clean, fraction=1.0)
        for name, label in clean.device_labels.items():
            assert perturbed.device_labels[name] == label
            assert perturbed.device_labels.get(f"{name}__p2", label) == label


class TestPreprocessInvariance:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_preprocess_restores_clean_structure(self, topology):
        clean_item = generate_ota(OtaSpec(topology=topology), name="inv")
        perturbed = perturb_all(clean_item, seed=1)
        reduced, _report = preprocess(perturbed.circuit)
        clean_names = {d.name for d in clean_item.circuit.devices}
        reduced_names = {d.name for d in reduced.devices}
        assert reduced_names == clean_names

    def test_geometry_restored(self):
        clean_item = generate_ota(OtaSpec(topology="five_transistor"), name="g")
        perturbed = perturb_all(clean_item, seed=2)
        reduced, _ = preprocess(perturbed.circuit)
        for dev in clean_item.circuit.devices:
            restored = reduced.device(dev.name)
            if dev.kind.is_transistor:
                assert restored.param("m", 1.0) == pytest.approx(
                    dev.param("m", 1.0)
                )
                assert restored.param("l") == pytest.approx(dev.param("l"))

    def test_graph_identical_after_preprocess(self):
        clean_item = generate_ota(OtaSpec(topology="telescopic"), name="gg")
        perturbed = perturb_all(clean_item, seed=3)
        reduced, _ = preprocess(perturbed.circuit)
        g_clean = CircuitGraph.from_circuit(clean_item.circuit)
        g_reduced = CircuitGraph.from_circuit(reduced)
        assert g_clean.n_elements == g_reduced.n_elements
        assert set(g_clean.net_index) == set(g_reduced.net_index)
        assert len(g_clean.edges) == len(g_reduced.edges)

    @given(
        st.sampled_from(TOPOLOGIES),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_invariance_property(self, topology, seed):
        clean_item = generate_ota(
            OtaSpec(topology=topology, size_seed=seed % 7), name=f"p{seed}"
        )
        perturbed = perturb_all(clean_item, seed=seed)
        reduced, _ = preprocess(perturbed.circuit)
        assert {d.name for d in reduced.devices} == {
            d.name for d in clean_item.circuit.devices
        }


class TestRecognitionRobustness:
    def test_pipeline_accuracy_unchanged(self, quick_ota_annotator):
        from repro.core.pipeline import GanaPipeline

        pipeline = GanaPipeline(annotator=quick_ota_annotator)
        clean_item = generate_ota(OtaSpec(topology="two_stage"), name="rob")
        perturbed = perturb_all(clean_item, seed=5)

        clean_result = pipeline.run(clean_item.circuit, name="clean")
        pert_result = pipeline.run(perturbed.circuit, name="pert")
        truth = clean_item.truth(clean_result.graph)
        assert pert_result.accuracies(truth) == clean_result.accuracies(truth)
