"""Dataset assembly: sizes, summaries, samples, train/test disjointness."""

import numpy as np
import pytest

from repro.datasets.synth import (
    build_samples,
    generate_ota_bias_dataset,
    generate_ota_test_set,
    generate_rf_dataset,
    generate_rf_test_set,
    summarize,
    task_classes,
)
from repro.exceptions import DatasetError
from repro.spice.writer import write_circuit


class TestGeneration:
    def test_ota_dataset_labels(self):
        dataset = generate_ota_bias_dataset(12)
        assert len(dataset) == 12
        summary = summarize("ota", dataset)
        assert summary.n_labels == 2
        assert summary.n_features == 18

    def test_rf_dataset_labels(self):
        dataset = generate_rf_dataset(12)
        summary = summarize("rf", dataset)
        assert summary.n_labels == 3

    def test_rf_mixes_blocks_and_receivers(self):
        dataset = generate_rf_dataset(20)
        class_counts = [len(set(d.device_labels.values())) for d in dataset]
        assert 1 in class_counts  # single blocks
        assert 3 in class_counts  # receivers

    def test_names_unique(self):
        dataset = generate_ota_bias_dataset(20)
        names = [d.name for d in dataset]
        assert len(names) == len(set(names))

    def test_train_test_seed_streams_differ(self):
        train = generate_ota_bias_dataset(10)
        test = generate_ota_test_set(10)
        train_decks = {write_circuit(d.circuit) for d in train}
        test_decks = {write_circuit(d.circuit) for d in test}
        # Different seed streams should not reproduce identical decks.
        assert len(train_decks & test_decks) < len(test_decks)

    def test_rf_test_set_is_receivers_only(self):
        test = generate_rf_test_set(8)
        for item in test:
            assert set(item.device_labels.values()) == {"lna", "mixer", "osc"}

    def test_summarize_rejects_empty(self):
        with pytest.raises(DatasetError):
            summarize("x", [])


class TestBuildSamples:
    def test_samples_match_dataset(self):
        dataset = generate_ota_bias_dataset(5)
        samples = build_samples(dataset, task_classes("ota"), levels=2)
        assert len(samples) == 5
        for sample, item in zip(samples, dataset):
            assert sample.name == item.name
            assert sample.features.shape[1] == 18

    def test_labels_are_class_ids(self):
        dataset = generate_ota_bias_dataset(3)
        samples = build_samples(dataset, task_classes("ota"), levels=2)
        for sample in samples:
            valid = sample.labels[sample.mask]
            assert ((valid >= 0) & (valid < 2)).all()

    def test_mask_covers_devices(self):
        dataset = generate_ota_bias_dataset(3)
        samples = build_samples(dataset, task_classes("ota"), levels=2)
        for sample, item in zip(samples, dataset):
            assert int(sample.mask.sum()) >= item.n_devices

    def test_unknown_classes_masked(self):
        from repro.datasets.systems import phased_array

        samples = build_samples([phased_array(n_channels=2)], task_classes("rf"), levels=2)
        (sample,) = samples
        graph = sample.graph
        # bpf/buf/inv devices must be masked out of training.
        for i, dev in enumerate(graph.elements):
            name = dev.name
            if "bpf" in name or "buf" in name or "inv" in name.replace("minj", ""):
                pass  # name-based check is fuzzy; rely on counts below
        assert int(sample.mask.sum()) < sample.n_vertices

    def test_preprocess_option(self):
        dataset = generate_ota_bias_dataset(2)
        plain = build_samples(dataset, task_classes("ota"), levels=2)
        pre = build_samples(
            dataset, task_classes("ota"), levels=2, run_preprocess=True
        )
        assert len(plain) == len(pre)


class TestTaskClasses:
    def test_known_tasks(self):
        assert task_classes("ota") == ("ota", "bias")
        assert task_classes("rf") == ("lna", "mixer", "osc")

    def test_unknown_task(self):
        with pytest.raises(DatasetError):
            task_classes("dsp")
