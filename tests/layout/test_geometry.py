"""Rectangle geometry and symmetry math."""

import pytest

from repro.exceptions import LayoutError
from repro.layout.geometry import Rect, bounding_box, symmetry_error


class TestRect:
    def test_positive_size_enforced(self):
        with pytest.raises(LayoutError):
            Rect(0, 0, 0, 1)
        with pytest.raises(LayoutError):
            Rect(0, 0, 1, -1)

    def test_derived_coordinates(self):
        r = Rect(1, 2, 3, 4)
        assert r.x2 == 4
        assert r.y2 == 6
        assert r.center == (2.5, 4.0)
        assert r.area == 12

    def test_moved_to(self):
        r = Rect(0, 0, 2, 2).moved_to(5, 5)
        assert (r.x, r.y, r.width, r.height) == (5, 5, 2, 2)

    def test_overlap_detection(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 2, 2))
        assert not a.overlaps(Rect(2, 0, 2, 2))  # edge contact is fine
        assert not a.overlaps(Rect(5, 5, 1, 1))

    def test_union(self):
        u = Rect(0, 0, 1, 1).union(Rect(2, 3, 1, 1))
        assert (u.x, u.y, u.x2, u.y2) == (0, 0, 3, 4)

    def test_mirror_about_axis(self):
        r = Rect(3, 1, 2, 2)
        m = r.mirrored_about_x(2.0)
        assert m.x == pytest.approx(-1.0)
        assert m.y == r.y
        assert m.width == r.width

    def test_mirror_involution(self):
        r = Rect(3, 1, 2, 2)
        back = r.mirrored_about_x(7.5).mirrored_about_x(7.5)
        assert (back.x, back.y) == (r.x, r.y)


class TestBoundingBox:
    def test_single(self):
        r = Rect(1, 1, 2, 2)
        assert bounding_box([r]) == r

    def test_multiple(self):
        box = bounding_box([Rect(0, 0, 1, 1), Rect(4, 5, 1, 1)])
        assert (box.x2, box.y2) == (5, 6)

    def test_empty_rejected(self):
        with pytest.raises(LayoutError):
            bounding_box([])


class TestSymmetryError:
    def test_perfect_pair(self):
        axis = 5.0
        right = Rect(6, 0, 2, 2)
        left = right.mirrored_about_x(axis)
        assert symmetry_error([(left, right)], axis) == 0.0

    def test_offset_detected(self):
        axis = 5.0
        right = Rect(6, 0, 2, 2)
        left = right.mirrored_about_x(axis).moved_to(0, 0.5)
        assert symmetry_error([(left, right)], axis) > 0

    def test_size_mismatch_detected(self):
        axis = 5.0
        right = Rect(6, 0, 2, 2)
        left = Rect(2, 0, 3, 2)
        assert symmetry_error([(left, right)], axis) > 0
