"""Simulated-annealing placement refinement."""

import pytest

from repro.core.constraints import Constraint, ConstraintKind
from repro.core.hierarchy import HierarchyNode, NodeKind
from repro.layout.anneal import AnnealConfig, AnnealResult, anneal_placement
from repro.layout.wirelength import total_wirelength
from repro.spice.netlist import Circuit, DeviceKind, make_mos


def _fixture(n_blocks: int = 3, devices_per_block: int = 4):
    """Blocks of devices with nets that reward specific orderings."""
    circuit = Circuit(name="anneal")
    root = HierarchyNode(name="sys", kind=NodeKind.SYSTEM)
    for b in range(n_blocks):
        block = root.add(
            HierarchyNode(
                name=f"blk{b}", kind=NodeKind.SUBBLOCK, block_class="ota"
            )
        )
        for d in range(devices_per_block):
            name = f"m{b}_{d}"
            # Chain nets inside the block plus one cross-block net that
            # couples consecutive blocks — ordering matters for HPWL.
            circuit.add(
                make_mos(
                    name, DeviceKind.NMOS,
                    f"n{b}_{d}", f"n{b}_{d + 1}", f"x{b}",
                )
            )
            block.add(
                HierarchyNode(name=name, kind=NodeKind.ELEMENT, devices=(name,))
            )
    return root, circuit


class TestAnneal:
    def test_result_is_legal(self):
        root, circuit = _fixture()
        result = anneal_placement(root, circuit, AnnealConfig(steps=60))
        result.layout.verify()

    def test_never_worse_than_initial(self):
        root, circuit = _fixture()
        result = anneal_placement(root, circuit, AnnealConfig(steps=80))
        assert result.final_cost <= result.initial_cost + 1e-9

    def test_best_layout_matches_final_cost(self):
        root, circuit = _fixture()
        result = anneal_placement(root, circuit, AnnealConfig(steps=80))
        assert total_wirelength(result.layout, circuit) == pytest.approx(
            result.final_cost
        )

    def test_history_length(self):
        root, circuit = _fixture()
        result = anneal_placement(root, circuit, AnnealConfig(steps=25))
        assert len(result.history) == 26  # initial + one per step

    def test_deterministic_per_seed(self):
        root, circuit = _fixture()
        a = anneal_placement(root, circuit, AnnealConfig(steps=40, seed=3))
        b = anneal_placement(root, circuit, AnnealConfig(steps=40, seed=3))
        assert a.final_cost == b.final_cost
        assert a.history == b.history

    def test_improvement_property(self):
        result = AnnealResult(
            layout=None, block_order={}, device_orders={},
            initial_cost=10.0, final_cost=8.0,
        )
        assert result.improvement == pytest.approx(0.2)

    def test_symmetry_survives_annealing(self):
        root, circuit = _fixture(n_blocks=1, devices_per_block=4)
        block = root.children[0]
        block.constraints.append(
            Constraint(ConstraintKind.SYMMETRY, ("m0_0", "m0_1"), source="t")
        )
        result = anneal_placement(root, circuit, AnnealConfig(steps=60))
        result.layout.verify()  # includes the symmetry check
        assert result.layout.symmetric_pairs

    def test_orders_returned_reproduce_layout(self):
        from repro.layout.placer import place_hierarchy

        root, circuit = _fixture()
        result = anneal_placement(root, circuit, AnnealConfig(steps=50))
        rebuilt = place_hierarchy(
            root, circuit, result.block_order, result.device_orders
        )
        assert total_wirelength(rebuilt, circuit) == pytest.approx(
            result.final_cost
        )
