"""HPWL wirelength model."""

import pytest

from repro.layout.geometry import Rect
from repro.layout.placer import Layout
from repro.layout.wirelength import (
    net_hpwl,
    net_pins,
    total_wirelength,
    wirelength_report,
)
from repro.spice.netlist import Circuit, DeviceKind, make_mos, make_passive


def _circuit() -> Circuit:
    c = Circuit(name="t")
    c.add(make_mos("m1", DeviceKind.NMOS, "a", "g1", "gnd!"))
    c.add(make_mos("m2", DeviceKind.NMOS, "a", "g2", "gnd!"))
    c.add(make_passive("r1", DeviceKind.RESISTOR, "a", "b", 1e3))
    return c


def _layout() -> Layout:
    return Layout(
        device_rects={
            "m1": Rect(0, 0, 2, 2),  # center (1, 1)
            "m2": Rect(4, 0, 2, 2),  # center (5, 1)
            "r1": Rect(0, 4, 2, 2),  # center (1, 5)
        }
    )


class TestNetPins:
    def test_power_nets_excluded_by_default(self):
        pins = net_pins(_circuit())
        assert "gnd!" not in pins
        assert pins["a"] == ["m1", "m2", "r1"]

    def test_power_nets_included_on_request(self):
        pins = net_pins(_circuit(), include_power=True)
        assert pins["gnd!"] == ["m1", "m2"]

    def test_device_counted_once_per_net(self):
        c = Circuit(name="diode")
        c.add(make_mos("m1", DeviceKind.NMOS, "x", "x", "gnd!"))
        pins = net_pins(c)
        assert pins["x"] == ["m1"]


class TestHpwl:
    def test_two_pin_net(self):
        hpwl = net_hpwl(_layout(), ["m1", "m2"])
        assert hpwl == pytest.approx(4.0)  # Δx=4, Δy=0

    def test_three_pin_net(self):
        hpwl = net_hpwl(_layout(), ["m1", "m2", "r1"])
        assert hpwl == pytest.approx(4.0 + 4.0)

    def test_single_pin_net_is_free(self):
        assert net_hpwl(_layout(), ["m1"]) == 0.0

    def test_unplaced_devices_skipped(self):
        assert net_hpwl(_layout(), ["m1", "ghost"]) == 0.0

    def test_total(self):
        total = total_wirelength(_layout(), _circuit())
        # net a: 8.0; nets g1/g2: single-pin, 0; net b: single-pin, 0.
        assert total == pytest.approx(8.0)

    def test_report_mentions_total(self):
        report = wirelength_report(_layout(), _circuit())
        assert "total HPWL" in report
        assert "a" in report
