"""Constraint-aware placement: overlap-free, symmetric, hierarchical."""

import pytest

from repro.core.constraints import Constraint, ConstraintKind
from repro.core.hierarchy import HierarchyNode, NodeKind
from repro.exceptions import LayoutError
from repro.layout.geometry import Rect
from repro.layout.placer import Layout, device_footprint, place_hierarchy
from repro.spice.netlist import Circuit, DeviceKind, make_mos, make_passive


def _ota_fixture():
    """A hand-built hierarchy + circuit with one symmetric pair."""
    circuit = Circuit(name="ota")
    for name in ("m1", "m2", "m3", "m4"):
        circuit.add(make_mos(name, DeviceKind.NMOS, "d", "g", "s", w=2e-6))
    circuit.add(make_passive("c1", DeviceKind.CAPACITOR, "a", "b", 1e-12))

    root = HierarchyNode(name="sys", kind=NodeKind.SYSTEM)
    block = root.add(
        HierarchyNode(name="ota0", kind=NodeKind.SUBBLOCK, block_class="ota")
    )
    block.add(
        HierarchyNode(
            name="dp",
            kind=NodeKind.PRIMITIVE,
            block_class="DP-N",
            devices=("m1", "m2"),
            constraints=[
                Constraint(ConstraintKind.SYMMETRY, ("m1", "m2"), source="DP-N")
            ],
        )
    )
    for name in ("m3", "m4", "c1"):
        block.add(HierarchyNode(name=name, kind=NodeKind.ELEMENT, devices=(name,)))
    return root, circuit


class TestDeviceFootprint:
    def test_transistor_scales_with_width(self):
        small = make_mos("a", DeviceKind.NMOS, "d", "g", "s", w=1e-6)
        big = make_mos("b", DeviceKind.NMOS, "d", "g", "s", w=8e-6)
        assert device_footprint(big)[0] > device_footprint(small)[0]

    def test_multiplier_counts(self):
        base = make_mos("a", DeviceKind.NMOS, "d", "g", "s", w=2e-6, m=1.0)
        multi = make_mos("b", DeviceKind.NMOS, "d", "g", "s", w=2e-6, m=4.0)
        assert device_footprint(multi)[0] > device_footprint(base)[0]

    def test_capacitor_scales_with_value(self):
        small = make_passive("c", DeviceKind.CAPACITOR, "a", "b", 0.1e-12)
        big = make_passive("d", DeviceKind.CAPACITOR, "a", "b", 10e-12)
        assert device_footprint(big)[0] > device_footprint(small)[0]

    def test_inductor_is_large(self):
        ind = make_passive("l", DeviceKind.INDUCTOR, "a", "b", 1e-9)
        res = make_passive("r", DeviceKind.RESISTOR, "a", "b", 1e3)
        assert device_footprint(ind)[0] > device_footprint(res)[0]


class TestPlaceHierarchy:
    def test_all_devices_placed(self):
        root, circuit = _ota_fixture()
        layout = place_hierarchy(root, circuit)
        assert set(layout.device_rects) == {"m1", "m2", "m3", "m4", "c1"}

    def test_verify_passes(self):
        root, circuit = _ota_fixture()
        layout = place_hierarchy(root, circuit)
        layout.verify()  # no overlap, zero symmetry error

    def test_symmetric_pair_mirrored(self):
        root, circuit = _ota_fixture()
        layout = place_hierarchy(root, circuit)
        axis = layout.symmetry_axes["ota0"]
        m1 = layout.device_rects["m1"]
        m2 = layout.device_rects["m2"]
        mirrored = m2.mirrored_about_x(axis)
        assert mirrored.x == pytest.approx(m1.x)
        assert mirrored.y == pytest.approx(m1.y)

    def test_block_outline_covers_members(self):
        root, circuit = _ota_fixture()
        layout = place_hierarchy(root, circuit)
        outline = layout.block_outlines["ota0"]
        for rect in layout.device_rects.values():
            assert outline.x <= rect.x and rect.x2 <= outline.x2

    def test_empty_hierarchy_rejected(self):
        root = HierarchyNode(name="sys", kind=NodeKind.SYSTEM)
        with pytest.raises(LayoutError):
            place_hierarchy(root, Circuit(name="c"))

    def test_multiple_blocks_do_not_overlap(self):
        root, circuit = _ota_fixture()
        second = HierarchyNode(
            name="bias0", kind=NodeKind.SUBBLOCK, block_class="bias"
        )
        circuit.add(make_mos("mb1", DeviceKind.NMOS, "d", "g", "s"))
        second.add(
            HierarchyNode(name="mb1", kind=NodeKind.ELEMENT, devices=("mb1",))
        )
        root.add(second)
        layout = place_hierarchy(root, circuit)
        layout.verify()
        a = layout.block_outlines["ota0"]
        b = layout.block_outlines["bias0"]
        assert not a.overlaps(b)

    def test_summary(self):
        root, circuit = _ota_fixture()
        layout = place_hierarchy(root, circuit)
        assert "5 devices" in layout.summary()


class TestVerify:
    def test_detects_overlap(self):
        layout = Layout(
            device_rects={"a": Rect(0, 0, 2, 2), "b": Rect(1, 1, 2, 2)}
        )
        with pytest.raises(LayoutError, match="overlap"):
            layout.verify()

    def test_detects_symmetry_violation(self):
        layout = Layout(
            device_rects={"a": Rect(0, 0, 1, 1), "b": Rect(5, 3, 1, 1)},
            symmetry_axes={"blk": 3.0},
            symmetric_pairs={"blk": [("a", "b")]},
        )
        with pytest.raises(LayoutError, match="symmetry"):
            layout.verify()

    def test_missing_axis(self):
        layout = Layout(
            device_rects={"a": Rect(0, 0, 1, 1), "b": Rect(5, 0, 1, 1)},
            symmetric_pairs={"blk": [("a", "b")]},
        )
        with pytest.raises(LayoutError, match="axis"):
            layout.verify()
