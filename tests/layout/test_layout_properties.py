"""Hypothesis property tests for the layout stack.

Random hierarchies with random symmetry constraints must always place
legally: no overlaps, exact symmetry, every device covered.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import Constraint, ConstraintKind
from repro.core.hierarchy import HierarchyNode, NodeKind
from repro.layout.anneal import AnnealConfig, anneal_placement
from repro.layout.placer import place_hierarchy
from repro.layout.wirelength import total_wirelength
from repro.spice.netlist import Circuit, DeviceKind, make_mos, make_passive

pytestmark = pytest.mark.property


@st.composite
def random_hierarchy(draw):
    """A random system of blocks, devices, and symmetry pairs."""
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=10_000)))
    n_blocks = draw(st.integers(min_value=1, max_value=4))
    circuit = Circuit(name="rand")
    root = HierarchyNode(name="sys", kind=NodeKind.SYSTEM)
    nets = [f"n{i}" for i in range(6)]
    counter = 0
    for b in range(n_blocks):
        block = root.add(
            HierarchyNode(name=f"blk{b}", kind=NodeKind.SUBBLOCK, block_class="x")
        )
        n_devices = draw(st.integers(min_value=1, max_value=6))
        names = []
        for _ in range(n_devices):
            name = f"d{counter}"
            counter += 1
            if rng.random() < 0.7:
                circuit.add(
                    make_mos(
                        name, DeviceKind.NMOS,
                        str(rng.choice(nets)), str(rng.choice(nets)),
                        str(rng.choice(nets)),
                        w=float(rng.choice([1e-6, 2e-6, 8e-6])),
                    )
                )
            else:
                circuit.add(
                    make_passive(
                        name, DeviceKind.CAPACITOR,
                        str(rng.choice(nets)), str(rng.choice(nets)),
                        float(rng.choice([0.1e-12, 1e-12, 5e-12])),
                    )
                )
            block.add(
                HierarchyNode(name=name, kind=NodeKind.ELEMENT, devices=(name,))
            )
            names.append(name)
        # Random symmetry pairs over same-footprint devices.
        if len(names) >= 2 and rng.random() < 0.6:
            a, b_ = rng.choice(len(names), size=2, replace=False)
            da = circuit.device(names[a])
            db = circuit.device(names[b_])
            from repro.layout.placer import device_footprint

            if device_footprint(da) == device_footprint(db):
                block.constraints.append(
                    Constraint(
                        ConstraintKind.SYMMETRY,
                        (names[a], names[b_]),
                        source="rand",
                    )
                )
    return root, circuit


class TestPlacementProperties:
    @given(random_hierarchy())
    @settings(max_examples=30, deadline=None)
    def test_constructive_always_legal(self, fixture):
        root, circuit = fixture
        layout = place_hierarchy(root, circuit)
        layout.verify()
        assert set(layout.device_rects) == {d.name for d in circuit.devices}

    @given(random_hierarchy())
    @settings(max_examples=10, deadline=None)
    def test_anneal_always_legal_and_monotone(self, fixture):
        root, circuit = fixture
        result = anneal_placement(root, circuit, AnnealConfig(steps=20))
        result.layout.verify()
        assert result.final_cost <= result.initial_cost + 1e-9
        assert total_wirelength(result.layout, circuit) <= result.initial_cost + 1e-9
